package localjoin

import (
	"container/list"
	"math/bits"
	"sync"

	"ewh/internal/join"
)

// BuildCache shares immutable sealed Builds between jobs that index the same
// relation content — the multi-tenant fleet's "many queries probe the same
// dimension table" case. Entries are keyed by a 128-bit content digest of
// the build-side key block (plus its exact length), so two tenants running
// the same scheme over the same relation hit the same entry without any
// coordination, and evicted by size-capped LRU. An evicted build stays valid
// for jobs still probing it (it is immutable; the cache only drops its own
// reference), so eviction needs no reference counting.

// digest constants: two independent word-wise FNV-1a-style streams. 64 bits
// each; H2 folds a rotated view of every key so the pair behaves as one
// 128-bit digest — collisions between distinct relation contents are not a
// practical concern at fleet cache sizes.
const (
	fnvOffset1 = 0xcbf29ce484222325
	fnvPrime1  = 0x00000100000001b3
	fnvOffset2 = 0x6c62272e07bb0142
	fnvPrime2  = 0x0000010000000233
)

// ChunkDigest is the content digest of one key chunk. Digests of a streamed
// relation's chunks combine (in the relation's canonical mapper-major order)
// into the relation's BuildKey, so hashing overlaps the stream instead of
// requiring the assembled block.
type ChunkDigest struct {
	H1, H2 uint64
	N      int64
}

// DigestKeys digests one chunk of keys.
func DigestKeys(keys []join.Key) ChunkDigest {
	h1, h2 := uint64(fnvOffset1), uint64(fnvOffset2)
	for _, k := range keys {
		x := uint64(k)
		h1 = (h1 ^ x) * fnvPrime1
		h2 = (h2 ^ bits.RotateLeft64(x, 31)) * fnvPrime2
	}
	return ChunkDigest{H1: h1, H2: h2, N: int64(len(keys))}
}

// BuildKey identifies a relation's content for cache lookups.
type BuildKey struct {
	H1, H2 uint64
	N      int64
}

// CombineDigests folds per-chunk digests — in canonical order — into a
// BuildKey. The fold is order-sensitive on purpose: the canonical order is
// the relation's assembled mapper-major layout, so equal assembled content
// arriving with the same chunk structure keys identically.
func CombineDigests(ds []ChunkDigest) BuildKey {
	k := BuildKey{H1: fnvOffset1, H2: fnvOffset2}
	for _, d := range ds {
		k.H1 = (k.H1^d.H1)*fnvPrime1 ^ uint64(d.N)
		k.H2 = (k.H2^d.H2)*fnvPrime2 ^ uint64(d.N)
		k.N += d.N
	}
	return k
}

// HashBuildKey is the one-shot BuildKey of a flat key block.
func HashBuildKey(keys []join.Key) BuildKey {
	return CombineDigests([]ChunkDigest{DigestKeys(keys)})
}

// BuildCacheStats is a point-in-time snapshot of a cache's counters.
type BuildCacheStats struct {
	Hits, Misses int64
	Entries      int
	Bytes        int64
}

// HitRate returns Hits/(Hits+Misses), 0 when no lookups happened.
func (s BuildCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// BuildCache is a size-capped LRU of sealed Builds keyed by relation
// content. Safe for concurrent use.
type BuildCache struct {
	mu     sync.Mutex
	max    int64
	size   int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	m      map[BuildKey]*list.Element
	hits   int64
	misses int64
}

type cacheEntry struct {
	key   BuildKey
	b     *Build
	bytes int64
}

// NewBuildCache returns a cache holding at most maxBytes of build tables
// (MemBytes accounting). maxBytes <= 0 returns nil — a nil *BuildCache is a
// valid always-miss cache, so callers gate on one pointer.
func NewBuildCache(maxBytes int64) *BuildCache {
	if maxBytes <= 0 {
		return nil
	}
	return &BuildCache{max: maxBytes, ll: list.New(), m: make(map[BuildKey]*list.Element)}
}

// Get returns the cached build for key, or nil. Hit/miss counters make the
// lookup observable for the load harness's cache-hit-rate column. Nil
// receiver: always miss, uncounted.
func (c *BuildCache) Get(key BuildKey) *Build {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.m[key]
	if el == nil {
		c.misses++
		return nil
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).b
}

// Add caches a SEALED build under key and returns the canonical build for
// that key: when a concurrent job raced the same content in first, the
// existing entry wins and the caller's build is discarded — every sharer
// probes one immutable build. Builds larger than the whole cache are not
// admitted (returned as-is). Nil receiver: passthrough.
func (c *BuildCache) Add(key BuildKey, b *Build) *Build {
	if c == nil {
		return b
	}
	bytes := b.MemBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.m[key]; el != nil {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).b
	}
	if bytes > c.max {
		return b
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, b: b, bytes: bytes})
	c.size += bytes
	for c.size > c.max {
		el := c.ll.Back()
		e := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.m, e.key)
		c.size -= e.bytes
	}
	return b
}

// Stats snapshots the cache counters. Nil receiver: zero stats.
func (c *BuildCache) Stats() BuildCacheStats {
	if c == nil {
		return BuildCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return BuildCacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Bytes: c.size}
}

package localjoin

import (
	"sync"
	"sync/atomic"

	"ewh/internal/join"
	"ewh/internal/keysort"
)

// This file is the hash local-join engine: a partitioned radix-hash build
// with an incremental insert API, safe for a probe goroutine running
// concurrently with the build goroutine. The motivating shape is the
// pipelined wire (CHUNK streaming scatter): a worker can feed each decoded
// sub-block into Insert the moment it lands instead of joining only after
// the whole relation assembled, and a sealed Build is immutable, so many
// jobs can probe one shared build (see BuildCache).
//
// Partitioning reuses keysort's radix digit — the low byte of the
// sign-biased key (keysort.Digit at shift 0), the byte that varies most on
// the clustered key domains the sort is tuned for — so sort and hash engines
// agree digit-for-digit on what a partition is. Each partition is an
// open-addressing multiplicity table (linear probing, power-of-two capacity)
// guarded by its own mutex while building; Seal publishes every partition
// through a per-partition atomic flag, after which probes are lock-free.
// Band and inequality conditions stay on the merge-sweep engine: their
// joinable windows span partitions, which is exactly what a hash layout
// destroys (see DESIGN.md "Local join engines").

// enginePartitions is the radix fan-out: one partition per value of the
// partitioning digit.
const enginePartitions = 256

// partShift selects the partitioning digit: the least-significant byte of
// the sign-biased key.
const partShift = 0

// EquiLike reports whether cond is a pure-equality predicate — join.Equi or
// a zero-width band — i.e. the conditions the hash engine can serve. All
// other conditions need the merge-sweep's ordered window.
func EquiLike(cond join.Condition) bool {
	switch c := cond.(type) {
	case join.Equi:
		return true
	case join.Band:
		return c.Beta == 0
	}
	return false
}

// hashKey spreads the full key over 64 bits for the in-partition slot
// choice. The partition already consumed the low radix digit, so the slot
// hash must draw on every byte; a Fibonacci multiply with an avalanche shift
// does, cheaply.
func hashKey(k join.Key) uint64 {
	h := uint64(k) * 0x9E3779B97F4A7C15
	return h ^ (h >> 29)
}

// buildPart is one radix partition of a Build: an open-addressing
// multiplicity table. mult[i] == 0 marks an empty slot, so no sentinel key
// is reserved; len(keys) is a power of two.
type buildPart struct {
	mu     sync.Mutex
	sealed atomic.Bool
	keys   []join.Key
	mult   []uint32
	used   int
}

// insertOne adds one key under the caller-held lock, growing at 3/4 load.
func (p *buildPart) insertOne(k join.Key) {
	if 4*(p.used+1) > 3*len(p.keys) {
		p.grow()
	}
	mask := uint64(len(p.keys) - 1)
	h := hashKey(k) & mask
	for {
		if p.mult[h] == 0 {
			p.keys[h] = k
			p.mult[h] = 1
			p.used++
			return
		}
		if p.keys[h] == k {
			p.mult[h]++
			return
		}
		h = (h + 1) & mask
	}
}

func (p *buildPart) grow() {
	newCap := 16
	if len(p.keys) > 0 {
		newCap = 2 * len(p.keys)
	}
	oldKeys, oldMult := p.keys, p.mult
	p.keys = make([]join.Key, newCap)
	p.mult = make([]uint32, newCap)
	mask := uint64(newCap - 1)
	for i, m := range oldMult {
		if m == 0 {
			continue
		}
		k := oldKeys[i]
		h := hashKey(k) & mask
		for p.mult[h] != 0 {
			h = (h + 1) & mask
		}
		p.keys[h] = k
		p.mult[h] = m
	}
}

// lookup returns k's multiplicity; zero when absent. Caller must hold the
// lock or have observed sealed.
func (p *buildPart) lookup(k join.Key) uint32 {
	if len(p.keys) == 0 {
		return 0
	}
	mask := uint64(len(p.keys) - 1)
	h := hashKey(k) & mask
	for {
		m := p.mult[h]
		if m == 0 {
			return 0
		}
		if p.keys[h] == k {
			return m
		}
		h = (h + 1) & mask
	}
}

// Build is an incrementally built multiplicity index over one relation's
// keys: Insert accepts each arriving chunk, ProbeCount/Probe run against
// whatever has been inserted so far (concurrently with further inserts),
// and Seal publishes the finished immutable build for lock-free probes and
// cache sharing.
type Build struct {
	parts [enginePartitions]buildPart
	// n and bytes are maintained by the build goroutine only (probes never
	// read them); after Seal they are safe for any reader.
	n     int64
	bytes int64
}

// NewBuild returns an empty build. Partitions allocate lazily, so an empty
// or tiny relation costs almost nothing.
func NewBuild() *Build { return &Build{} }

// Len returns the number of keys inserted so far. Call it from the build
// goroutine, or after Seal.
func (b *Build) Len() int64 { return b.n }

// MemBytes estimates the build's retained table bytes — the unit BuildCache
// budgets in. Call after Seal.
func (b *Build) MemBytes() int64 { return b.bytes + int64(len(b.parts))*8 }

// partScratchPool recycles the chunk-partitioning scratch buffers.
var partScratchPool sync.Pool // stores *[]join.Key

func getPartScratch(n int) []join.Key {
	if v := partScratchPool.Get(); v != nil {
		s := *v.(*[]join.Key)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]join.Key, n)
}

func putPartScratch(s []join.Key) {
	partScratchPool.Put(&s)
}

// partitionRuns radix-partitions keys by their partitioning digit into
// scratch (a stable counting scatter — arrival order is preserved within
// each partition, the property the pair layer's ordering rests on) and
// returns the per-partition end offsets. Run d occupies
// scratch[off[d]-count[d] : off[d]].
func partitionRuns(keys, scratch []join.Key) (off [enginePartitions]int32) {
	var count [enginePartitions]int32
	for _, k := range keys {
		count[keysort.Digit(k, partShift)]++
	}
	var sum int32
	for d := range off {
		sum += count[d]
		off[d] = sum
	}
	pos := off
	for d := range pos {
		pos[d] -= count[d]
	}
	for _, k := range keys {
		d := keysort.Digit(k, partShift)
		scratch[pos[d]] = k
		pos[d]++
	}
	return off
}

// Insert adds one chunk of build-side keys. It may be called once with the
// whole relation or repeatedly with arriving sub-blocks; chunk boundaries do
// not affect the finished build. The chunk is radix-partitioned first, so
// each touched partition's lock is taken once per chunk, not once per key.
// Insert is safe to run concurrently with Probe/ProbeCount (but not with
// another Insert — one build goroutine owns the insert side, matching one
// socket read loop per relation). Must not be called after Seal.
func (b *Build) Insert(keys []join.Key) {
	if len(keys) == 0 {
		return
	}
	scratch := getPartScratch(len(keys))
	off := partitionRuns(keys, scratch)
	var lo int32
	for d := range off {
		hi := off[d]
		if hi == lo {
			continue
		}
		p := &b.parts[d]
		p.mu.Lock()
		for _, k := range scratch[lo:hi] {
			p.insertOne(k)
		}
		p.mu.Unlock()
		lo = hi
	}
	putPartScratch(scratch)
	b.n += int64(len(keys))
}

// Seal publishes the build: every partition's table is flushed under its
// lock and its sealed flag set, after which probes skip the locks entirely
// and the build is immutable — the publication contract that lets a sealed
// build be shared by any number of concurrent probers (and cached across
// jobs). Sealing an already-sealed build is a no-op.
func (b *Build) Seal() {
	var bytes int64
	for i := range b.parts {
		p := &b.parts[i]
		p.mu.Lock()
		bytes += int64(cap(p.keys))*8 + int64(cap(p.mult))*4
		p.sealed.Store(true)
		p.mu.Unlock()
	}
	b.bytes = bytes
}

// probePart sums the multiplicities of one partition's probe run, lock-free
// once the partition sealed.
func (p *buildPart) probeRun(run []join.Key) int64 {
	var out int64
	if p.sealed.Load() {
		for _, k := range run {
			out += int64(p.lookup(k))
		}
		return out
	}
	p.mu.Lock()
	for _, k := range run {
		out += int64(p.lookup(k))
	}
	p.mu.Unlock()
	return out
}

// ProbeCount returns the number of equi-join matches between the probe
// chunk and the build side inserted so far: sum over probe keys of the
// key's build multiplicity. Safe concurrently with Insert; against a
// partition that has sealed (all of them, after Seal) it takes no locks.
func (b *Build) ProbeCount(keys []join.Key) int64 {
	if len(keys) == 0 {
		return 0
	}
	scratch := getPartScratch(len(keys))
	off := partitionRuns(keys, scratch)
	var out int64
	var lo int32
	for d := range off {
		hi := off[d]
		if hi == lo {
			continue
		}
		out += b.parts[d].probeRun(scratch[lo:hi])
		lo = hi
	}
	putPartScratch(scratch)
	return out
}

// Probe calls emit(i, mult) for every probe key keys[i] present on the
// build side, in input order (no partition reordering), with its build
// multiplicity. Same concurrency contract as ProbeCount. A partition seals
// individually, so probes of sealed partitions are lock-free even while
// other partitions still build.
func (b *Build) Probe(keys []join.Key, emit func(i int, mult int64)) {
	for i, k := range keys {
		p := &b.parts[keysort.Digit(k, partShift)]
		var m uint32
		if p.sealed.Load() {
			m = p.lookup(k)
		} else {
			p.mu.Lock()
			m = p.lookup(k)
			p.mu.Unlock()
		}
		if m != 0 {
			emit(i, int64(m))
		}
	}
}

// EngineCount is the one-shot form of the hash engine for callers holding
// both relations flat: build over r1, seal, probe r2. It mutates neither
// input and serves exactly the EquiLike conditions.
func EngineCount(r1, r2 []join.Key) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	b := NewBuild()
	b.Insert(r1)
	b.Seal()
	return b.ProbeCount(r2)
}

// MergeCountOwned is the merge-sweep engine for callers that own their
// buffers: both relations sort IN PLACE (radix keysort) and the joinable
// window sweeps once — the path every non-equality condition takes, and
// what engine selection falls back to when the hash engine is forced onto a
// condition it cannot serve.
func MergeCountOwned(r1, r2 []join.Key, cond join.Condition) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	keysort.Sort(r1)
	keysort.Sort(r2)
	return CountSorted(r1, r2, cond)
}

// PairTable is the deterministic pair-ordering layer of the hash engine: an
// immutable index over one relation's keys mapping each key to its arrival
// indices in ascending order. For a pure-equality condition every partner of
// an R1 key shares that key, so "partners ascend by (key, arrival index)" —
// exec.JoinPairs' contract — degenerates to "arrival indices ascending",
// which is exactly the order each group stores. Built in two stable
// counting passes per partition; construction is single-threaded and the
// result is immutable, so lookups need no synchronization.
type PairTable struct {
	parts [enginePartitions]pairPart
	n     int
}

// pairPart indexes one partition: an open-addressing table from key to
// group id, and the flattened ascending index groups.
type pairPart struct {
	keys []join.Key // slot -> key
	gid  []int32    // slot -> group id; -1 empty
	off  []int32    // group -> start in idx; len = groups+1
	idx  []uint32   // arrival indices, grouped by key, ascending per group
}

// NewPairTable indexes keys (arrival order) for Partners lookups.
func NewPairTable(keys []join.Key) *PairTable {
	t := &PairTable{n: len(keys)}
	if len(keys) == 0 {
		return t
	}
	// Stable radix scatter of (key, arrival index) pairs, as in Build.
	skeys := getPartScratch(len(keys))
	sidx := make([]uint32, len(keys))
	var count [enginePartitions]int32
	for _, k := range keys {
		count[keysort.Digit(k, partShift)]++
	}
	var off [enginePartitions]int32
	var sum int32
	for d := range off {
		off[d] = sum
		sum += count[d]
	}
	pos := off
	for i, k := range keys {
		d := keysort.Digit(k, partShift)
		skeys[pos[d]] = k
		sidx[pos[d]] = uint32(i)
		pos[d]++
	}
	for d := range t.parts {
		if count[d] == 0 {
			continue
		}
		lo, hi := off[d], off[d]+count[d]
		t.parts[d].build(skeys[lo:hi], sidx[lo:hi])
	}
	putPartScratch(skeys)
	return t
}

// build fills one partition from its arrival-ordered (key, index) run.
func (p *pairPart) build(keys []join.Key, idx []uint32) {
	cap := 16
	for 3*len(keys) >= 2*cap { // load factor 2/3
		cap *= 2
	}
	p.keys = make([]join.Key, cap)
	p.gid = make([]int32, cap)
	for i := range p.gid {
		p.gid[i] = -1
	}
	mask := uint64(cap - 1)
	groups := int32(0)
	gcount := make([]int32, 0, len(keys))
	slotOf := make([]int32, len(keys)) // run position -> slot, reused in pass 2
	for i, k := range keys {
		h := hashKey(k) & mask
		for {
			g := p.gid[h]
			if g == -1 {
				p.keys[h] = k
				p.gid[h] = groups
				gcount = append(gcount, 1)
				groups++
				break
			}
			if p.keys[h] == k {
				gcount[g]++
				break
			}
			h = (h + 1) & mask
		}
		slotOf[i] = int32(h)
	}
	p.off = make([]int32, groups+1)
	var sum int32
	for g, c := range gcount {
		p.off[g] = sum
		sum += c
		gcount[g] = 0 // reused as per-group fill cursor
	}
	p.off[groups] = sum
	p.idx = make([]uint32, len(idx))
	for i, s := range slotOf {
		g := p.gid[s]
		p.idx[p.off[g]+gcount[g]] = idx[i]
		gcount[g]++
	}
}

// Partners returns k's arrival indices in ascending order (nil when k is
// absent). The slice aliases the table; callers must not mutate it.
func (t *PairTable) Partners(k join.Key) []uint32 {
	p := &t.parts[keysort.Digit(k, partShift)]
	if len(p.keys) == 0 {
		return nil
	}
	mask := uint64(len(p.keys) - 1)
	h := hashKey(k) & mask
	for {
		g := p.gid[h]
		if g == -1 {
			return nil
		}
		if p.keys[h] == k {
			return p.idx[p.off[g]:p.off[g+1]]
		}
		h = (h + 1) & mask
	}
}

// Len returns the number of indexed keys.
func (t *PairTable) Len() int { return t.n }

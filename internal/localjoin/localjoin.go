// Package localjoin provides the algorithms each machine runs over its
// region's tuples. The partitioning schemes are orthogonal to the local join
// (§IV "Local Join Algorithm"); the engine defaults to the sort-merge
// monotonic join and uses the hash join for pure equality conditions.
package localjoin

import (
	"slices"

	"ewh/internal/join"
	"ewh/internal/keysort"
)

// Count returns |r1 ⋈_cond r2| with a sort-merge sweep: both sides are
// sorted once (radix keysort, no reflection or comparison overhead) and the
// joinable window of R2 keys is maintained with two advancing cursors — the
// sorts are O(n) counting passes and the sweep is O(n1+n2), with no
// per-tuple binary-search probes. It requires the condition's JoinableRange
// endpoints to be nondecreasing in the R1 key, which holds for every
// monotonic condition in this library (§III-B).
func Count(r1, r2 []join.Key, cond join.Condition) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	s1 := slices.Clone(r1)
	s2 := slices.Clone(r2)
	keysort.Sort(s1)
	keysort.Sort(s2)
	return CountSorted(s1, s2, cond)
}

// CountSorted is Count over pre-sorted inputs: callers that own their buffers
// (the engine's reduce phase sorts its flat shuffle output in place) skip the
// defensive copies and pay only the O(n1+n2) sweep.
func CountSorted(s1, s2 []join.Key, cond join.Condition) int64 {
	if len(s1) == 0 || len(s2) == 0 {
		return 0
	}
	var out int64
	loIdx, hiIdx := 0, 0 // window [loIdx, hiIdx) of joinable s2 keys
	for _, k := range s1 {
		lo, hi := cond.JoinableRange(k)
		for loIdx < len(s2) && s2[loIdx] < lo {
			loIdx++
		}
		if hiIdx < loIdx {
			hiIdx = loIdx
		}
		for hiIdx < len(s2) && s2[hiIdx] <= hi {
			hiIdx++
		}
		out += int64(hiIdx - loIdx)
	}
	return out
}

// HashCount returns |r1 ⋈ r2| for an equality join via a multiplicity map —
// O(n1+n2) and the right choice when the condition is join.Equi or a
// zero-width band.
func HashCount(r1, r2 []join.Key) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	small, large := r1, r2
	if len(small) > len(large) {
		small, large = large, small
	}
	mult := make(map[join.Key]int64, len(small))
	for _, k := range small {
		mult[k]++
	}
	var out int64
	for _, k := range large {
		out += mult[k]
	}
	return out
}

// NestedLoopCount is the O(n1·n2) reference implementation used by tests as
// ground truth.
func NestedLoopCount(r1, r2 []join.Key, cond join.Condition) int64 {
	var out int64
	for _, a := range r1 {
		for _, b := range r2 {
			if cond.Matches(a, b) {
				out++
			}
		}
	}
	return out
}

// Emit calls fn for every matching pair, in R1 order with R2 partners
// ascending, using the sorted monotonic join. It materializes the full
// result and so is meant for small inputs (tests, examples).
func Emit(r1, r2 []join.Key, cond join.Condition, fn func(a, b join.Key)) {
	if len(r1) == 0 || len(r2) == 0 {
		return
	}
	sorted := slices.Clone(r2)
	keysort.Sort(sorted)
	for _, a := range r1 {
		lo, hi := cond.JoinableRange(a)
		i, _ := slices.BinarySearch(sorted, lo)
		for ; i < len(sorted) && sorted[i] <= hi; i++ {
			fn(a, sorted[i])
		}
	}
}

// AutoCount picks the partitioned hash engine (EngineCount) for
// pure-equality conditions and the sort-merge Count otherwise. Neither
// input is mutated.
func AutoCount(r1, r2 []join.Key, cond join.Condition) int64 {
	if EquiLike(cond) {
		return EngineCount(r1, r2)
	}
	return Count(r1, r2, cond)
}

// AutoCountOwned is AutoCount for callers that own their buffers, like the
// engine's reduce phase over its flat shuffle output: non-equality conditions
// sort r1 and r2 IN PLACE (no defensive copies) before the merge sweep, and
// equality takes the copy-free partitioned hash engine.
func AutoCountOwned(r1, r2 []join.Key, cond join.Condition) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	if EquiLike(cond) {
		return EngineCount(r1, r2)
	}
	keysort.Sort(r1)
	keysort.Sort(r2)
	return CountSorted(r1, r2, cond)
}

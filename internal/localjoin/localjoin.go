// Package localjoin provides the algorithms each machine runs over its
// region's tuples. The partitioning schemes are orthogonal to the local join
// (§IV "Local Join Algorithm"); the engine defaults to the sort-based
// monotonic join and uses the hash join for pure equality conditions.
package localjoin

import (
	"sort"

	"ewh/internal/join"
	"ewh/internal/sample"
)

// Count returns |r1 ⋈_cond r2| using the sort-based monotonic join: R2 is
// organized as a sorted multiset and each R1 tuple's joinable-set size is a
// prefix-sum range count — O((n1+n2)·log n2) total, the standard plan for
// band and inequality joins.
func Count(r1, r2 []join.Key, cond join.Condition) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	m2 := sample.BuildMultiset(r2)
	var out int64
	for _, k := range r1 {
		out += m2.D2(cond, k)
	}
	return out
}

// HashCount returns |r1 ⋈ r2| for an equality join via a multiplicity map —
// O(n1+n2) and the right choice when the condition is join.Equi or a
// zero-width band.
func HashCount(r1, r2 []join.Key) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	small, large := r1, r2
	if len(small) > len(large) {
		small, large = large, small
	}
	mult := make(map[join.Key]int64, len(small))
	for _, k := range small {
		mult[k]++
	}
	var out int64
	for _, k := range large {
		out += mult[k]
	}
	return out
}

// NestedLoopCount is the O(n1·n2) reference implementation used by tests as
// ground truth.
func NestedLoopCount(r1, r2 []join.Key, cond join.Condition) int64 {
	var out int64
	for _, a := range r1 {
		for _, b := range r2 {
			if cond.Matches(a, b) {
				out++
			}
		}
	}
	return out
}

// Emit calls fn for every matching pair, in R1 order with R2 partners
// ascending, using the sorted monotonic join. It materializes the full
// result and so is meant for small inputs (tests, examples).
func Emit(r1, r2 []join.Key, cond join.Condition, fn func(a, b join.Key)) {
	if len(r1) == 0 || len(r2) == 0 {
		return
	}
	sorted := make([]join.Key, len(r2))
	copy(sorted, r2)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, a := range r1 {
		lo, hi := cond.JoinableRange(a)
		i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= lo })
		for ; i < len(sorted) && sorted[i] <= hi; i++ {
			fn(a, sorted[i])
		}
	}
}

// AutoCount picks HashCount for pure-equality conditions and Count otherwise.
func AutoCount(r1, r2 []join.Key, cond join.Condition) int64 {
	switch c := cond.(type) {
	case join.Equi:
		return HashCount(r1, r2)
	case join.Band:
		if c.Beta == 0 {
			return HashCount(r1, r2)
		}
	}
	return Count(r1, r2, cond)
}

package localjoin

import (
	"sort"

	"ewh/internal/join"
)

// MergeCount counts the band-join output with the classic two-pointer sliding
// window over both relations sorted: for each R1 key the window of joinable
// R2 keys advances monotonically, giving O(n1 log n1 + n2 log n2 + n1) after
// sorting instead of a binary search per tuple. It applies to any monotonic
// condition whose joinable range has nondecreasing endpoints — all conditions
// in this library.
func MergeCount(r1, r2 []join.Key, cond join.Condition) int64 {
	if len(r1) == 0 || len(r2) == 0 {
		return 0
	}
	s1 := sortedCopy(r1)
	s2 := sortedCopy(r2)
	// Prefix counts over s2 let the window contribute in O(1) per r1 tuple.
	var out int64
	loIdx, hiIdx := 0, 0 // window [loIdx, hiIdx) of joinable s2 keys
	for _, k := range s1 {
		lo, hi := cond.JoinableRange(k)
		for loIdx < len(s2) && s2[loIdx] < lo {
			loIdx++
		}
		if hiIdx < loIdx {
			hiIdx = loIdx
		}
		for hiIdx < len(s2) && s2[hiIdx] <= hi {
			hiIdx++
		}
		out += int64(hiIdx - loIdx)
	}
	return out
}

func sortedCopy(keys []join.Key) []join.Key {
	out := make([]join.Key, len(keys))
	copy(out, keys)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

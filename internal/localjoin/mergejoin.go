package localjoin

import "ewh/internal/join"

// MergeCount is the historical name of the sort-merge sweep that is now the
// default Count implementation; it remains as a thin alias for callers and
// tests that compare the two paths.
func MergeCount(r1, r2 []join.Key, cond join.Condition) int64 {
	return Count(r1, r2, cond)
}

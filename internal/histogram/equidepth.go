// Package histogram implements the approximate equi-depth histograms the
// partitioning schemes impose over each input relation's join keys (§III-A,
// [13] Chaudhuri-Motwani-Narasayya). The bucket boundaries of the two
// relations' histograms form the grid over the join matrix: each grid row
// (column) holds roughly n/ns tuples of R1 (R2), which is what makes the
// semi-perimeter of a region an accurate input-cost estimate.
package histogram

import (
	"fmt"
	"math"
	"slices"

	"ewh/internal/join"
	"ewh/internal/keysort"
)

// EquiDepth is an equi-depth histogram over join keys: buckets() contiguous
// half-open key ranges holding approximately equal tuple counts.
type EquiDepth struct {
	// bounds has len buckets+1; bucket i covers [bounds[i], bounds[i+1]).
	bounds []join.Key
}

// FromSample builds an ns-bucket approximate equi-depth histogram from a
// uniform random sample of a relation's join keys. The sample is copied and
// sorted; per [13] a sample of size Θ(ns·log n) suffices for bucket sizes
// within a small relative error with high probability.
//
// It returns an error if the sample is empty or ns < 1. If the sample has
// fewer distinct values than ns, the histogram degrades gracefully to fewer
// effective buckets (adjacent boundaries may coincide; empty buckets are
// removed).
func FromSample(sample []join.Key, ns int) (*EquiDepth, error) {
	if ns < 1 {
		return nil, fmt.Errorf("histogram: ns = %d < 1", ns)
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("histogram: empty sample")
	}
	sorted := slices.Clone(sample)
	keysort.Sort(sorted)
	return FromSorted(sorted, ns)
}

// FromSorted builds the histogram from an already-sorted sample without
// copying it. The caller must not mutate sorted afterwards.
func FromSorted(sorted []join.Key, ns int) (*EquiDepth, error) {
	if ns < 1 {
		return nil, fmt.Errorf("histogram: ns = %d < 1", ns)
	}
	n := len(sorted)
	if n == 0 {
		return nil, fmt.Errorf("histogram: empty sample")
	}
	if ns > n {
		ns = n
	}
	bounds := make([]join.Key, 0, ns+1)
	bounds = append(bounds, sorted[0])
	for i := 1; i < ns; i++ {
		q := sorted[i*n/ns]
		// Skip duplicate boundaries: fewer effective buckets, never empty ones.
		if q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	top := join.Key(math.MaxInt64)
	if sorted[n-1] < math.MaxInt64 {
		top = sorted[n-1] + 1
	}
	return &EquiDepth{bounds: appendTop(bounds, top)}, nil
}

// appendTop appends a histogram's final (exclusive) boundary, keeping the
// slice strictly increasing even at the very top of the key domain, where
// the usual +1 would overflow int64: boundaries stuck at MaxInt64 are
// pushed down instead, and the edge-bucket clamping absorbs the off-by-one
// approximation (keys at or above the last boundary route to the final
// bucket regardless).
func appendTop(bounds []join.Key, top join.Key) []join.Key {
	last := bounds[len(bounds)-1]
	switch {
	case top > last:
		return append(bounds, top)
	case last < math.MaxInt64:
		// All sample keys identical: single bucket [k, k+1).
		return append(bounds, last+1)
	}
	bounds = append(bounds, math.MaxInt64)
	for i := len(bounds) - 2; i >= 0 && bounds[i] >= bounds[i+1]; i-- {
		bounds[i] = bounds[i+1] - 1
	}
	return bounds
}

// Buckets returns the number of buckets.
func (h *EquiDepth) Buckets() int { return len(h.bounds) - 1 }

// Bucket returns the index of the bucket containing k. Keys below the first
// boundary map to bucket 0 and keys at or above the last map to the final
// bucket, so routing is total even for keys the sample missed.
func (h *EquiDepth) Bucket(k join.Key) int {
	// First i with bounds[i] > k (bounds are strictly increasing); bucket is
	// i-1.
	i, found := slices.BinarySearch(h.bounds, k)
	if found {
		i++
	}
	switch {
	case i == 0:
		return 0
	case i > h.Buckets():
		return h.Buckets() - 1
	default:
		return i - 1
	}
}

// Bounds returns the half-open key range [lo, hi) of bucket i.
func (h *EquiDepth) Bounds(i int) (lo, hi join.Key) {
	return h.bounds[i], h.bounds[i+1]
}

// Boundaries returns the full boundary slice (len Buckets()+1). Callers must
// not mutate it.
func (h *EquiDepth) Boundaries() []join.Key { return h.bounds }

// BucketRange returns the smallest bucket interval [first, last] whose key
// ranges intersect the inclusive key range [lo, hi]; ok is false when the
// range falls entirely outside the histogram domain... it never does, since
// edge buckets absorb out-of-domain keys, so ok is always true for lo <= hi.
func (h *EquiDepth) BucketRange(lo, hi join.Key) (first, last int, ok bool) {
	if lo > hi {
		return 0, -1, false
	}
	return h.Bucket(lo), h.Bucket(hi), true
}

package histogram_test

import (
	"math"
	"slices"
	"testing"

	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/stats"
)

func TestFromBoundsValidates(t *testing.T) {
	if _, err := histogram.FromBounds([]join.Key{1}); err == nil {
		t.Error("single boundary accepted")
	}
	if _, err := histogram.FromBounds([]join.Key{1, 1}); err == nil {
		t.Error("non-increasing boundaries accepted")
	}
	if _, err := histogram.FromBounds([]join.Key{3, 2}); err == nil {
		t.Error("decreasing boundaries accepted")
	}
	h, err := histogram.FromBounds([]join.Key{0, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 2 {
		t.Fatalf("got %d buckets, want 2", h.Buckets())
	}
}

// buildShard sorts keys and builds an ns-bucket histogram over them.
func buildShard(t *testing.T, keys []join.Key, ns int) *histogram.EquiDepth {
	t.Helper()
	sorted := slices.Clone(keys)
	slices.Sort(sorted)
	h, err := histogram.FromSorted(sorted, ns)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMergeIsSymmetric(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		rng := stats.NewRNG(seed)
		na := 50 + rng.Intn(2000)
		nb := 50 + rng.Intn(2000)
		a := make([]join.Key, na)
		b := make([]join.Key, nb)
		for i := range a {
			a[i] = rng.Int64n(10000) - 5000
		}
		for i := range b {
			b[i] = rng.Int64n(3000)
		}
		ha := buildShard(t, a, 16)
		hb := buildShard(t, b, 24)
		m1, err := histogram.Merge(ha, int64(na), hb, int64(nb), 24)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := histogram.Merge(hb, int64(nb), ha, int64(na), 24)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(m1.Boundaries(), m2.Boundaries()) {
			t.Fatalf("seed %d: merge not symmetric:\n%v\n%v", seed, m1.Boundaries(), m2.Boundaries())
		}
	}
}

func TestMergeApproximatesUnionQuantiles(t *testing.T) {
	// Two disjoint shards of one skewed multiset: the merged histogram's
	// buckets must hold roughly equal shares of the union, within the slack
	// the piecewise-uniform reading allows.
	rng := stats.NewRNG(7)
	zipf := stats.NewZipf(5000, 1.0)
	var a, b, all []join.Key
	for i := 0; i < 20000; i++ {
		k := join.Key(zipf.Draw(rng))
		all = append(all, k)
		if i%2 == 0 {
			a = append(a, k)
		} else {
			b = append(b, k)
		}
	}
	const ns = 32
	merged, err := histogram.Merge(buildShard(t, a, ns), int64(len(a)),
		buildShard(t, b, ns), int64(len(b)), ns)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int64, merged.Buckets())
	for _, k := range all {
		counts[merged.Bucket(k)]++
	}
	ideal := float64(len(all)) / float64(merged.Buckets())
	for i, c := range counts {
		if float64(c) > 4*ideal {
			t.Errorf("bucket %d holds %d of %d tuples (ideal %.0f): quantiles badly off", i, c, len(all), ideal)
		}
	}
}

func TestMergeSurvivesFullDomainKeys(t *testing.T) {
	// Full-range 64-bit keys produce buckets spanning more than half the
	// int64 domain; the CDF and quantile interpolation must not wrap.
	wide := func(n int, seed uint64) []join.Key {
		r := stats.NewRNG(seed)
		out := make([]join.Key, n)
		for i := range out {
			out[i] = join.Key(r.Uint64()) // full int64 range, both signs
		}
		return out
	}
	a := buildShard(t, wide(4000, 1), 16)
	b := buildShard(t, wide(4000, 2), 16)
	m, err := histogram.Merge(a, 4000, b, 4000, 16)
	if err != nil {
		t.Fatal(err)
	}
	bounds := m.Boundaries()
	if len(bounds) < 9 {
		t.Fatalf("full-domain merge degenerated to %d boundaries: %v", len(bounds), bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("merged boundaries not increasing at %d: %v", i, bounds)
		}
	}

	// Shards topping out at MaxInt64: the merged top boundary must not wrap.
	top := buildShard(t, []join.Key{math.MaxInt64, math.MaxInt64, math.MaxInt64 - 3, 7}, 4)
	mt, err := histogram.Merge(top, 4, buildShard(t, []join.Key{math.MaxInt64, 1}, 2), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tb := mt.Boundaries()
	for i := 1; i < len(tb); i++ {
		if tb[i] <= tb[i-1] {
			t.Fatalf("top-of-domain merge not increasing at %d: %v", i, tb)
		}
	}
}

func TestMergeZeroWeightSides(t *testing.T) {
	h := buildShard(t, []join.Key{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	m, err := histogram.Merge(h, 8, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(m.Boundaries(), h.Boundaries()) {
		t.Fatal("zero-weight merge changed the surviving histogram")
	}
	if _, err := histogram.Merge(nil, 0, nil, 0, 4); err == nil {
		t.Error("merging two empty shards accepted")
	}
}

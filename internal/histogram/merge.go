package histogram

import (
	"fmt"
	"math"
	"slices"

	"ewh/internal/join"
)

// This file is the distributed half of the histogram machinery: workers
// summarize disjoint shards of one relation with local equi-depth histograms,
// and the coordinator merges them into a global approximate equi-depth
// histogram without ever seeing a tuple. Each local bucket is treated as
// uniform mass over its key range (the same piecewise-uniform reading every
// equi-depth estimator uses), the shard CDFs are summed with the shards'
// tuple counts as weights, and the merged boundaries are the 1/ns quantiles
// of the summed mass. The computation is deterministic and symmetric in its
// arguments, which is what makes the distributed statistics summaries'
// merge order-insensitive (see stats.MergeSummaries).

// FromBounds reconstructs a histogram from a boundary slice (len >= 2,
// strictly increasing) — the wire form a statistics summary carries. The
// slice is copied.
func FromBounds(bounds []join.Key) (*EquiDepth, error) {
	if len(bounds) < 2 {
		return nil, fmt.Errorf("histogram: %d boundaries, need at least 2", len(bounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			return nil, fmt.Errorf("histogram: boundaries not strictly increasing at %d", i)
		}
	}
	return &EquiDepth{bounds: slices.Clone(bounds)}, nil
}

// massBelow evaluates the piecewise-uniform CDF of one histogram at key k:
// the fraction of the histogram's mass on keys < k, reading each bucket as
// uniform over its key range.
func massBelow(bounds []join.Key, k join.Key) float64 {
	n := len(bounds) - 1
	if k <= bounds[0] {
		return 0
	}
	if k >= bounds[n] {
		return 1
	}
	// First i with bounds[i] > k; the containing bucket is i-1.
	i, found := slices.BinarySearch(bounds, k)
	if found {
		i++
	}
	b := i - 1
	lo, hi := bounds[b], bounds[b+1]
	// Subtract in float64: a bucket spanning more than half the int64
	// domain (full-range hashed keys) would wrap an int64 difference.
	frac := (float64(k) - float64(lo)) / (float64(hi) - float64(lo))
	return (float64(b) + frac) / float64(n)
}

// Merge combines two equi-depth histograms built over disjoint shards of one
// multiset into an ns-bucket approximate equi-depth histogram of the union.
// wa and wb weight each histogram by its shard's tuple count; a histogram
// whose weight is zero (an empty shard) contributes nothing and may be nil.
// The merge is deterministic and symmetric: Merge(a, wa, b, wb, ns) and
// Merge(b, wb, a, wa, ns) produce identical boundaries.
func Merge(a *EquiDepth, wa int64, b *EquiDepth, wb int64, ns int) (*EquiDepth, error) {
	if ns < 1 {
		return nil, fmt.Errorf("histogram: merge ns = %d < 1", ns)
	}
	if wa < 0 || wb < 0 {
		return nil, fmt.Errorf("histogram: negative merge weights %d/%d", wa, wb)
	}
	if wa == 0 && wb == 0 {
		return nil, fmt.Errorf("histogram: merging two empty shards")
	}
	if wa == 0 {
		return FromBounds(b.bounds)
	}
	if wb == 0 {
		return FromBounds(a.bounds)
	}

	// The summed CDF is piecewise linear between consecutive keys of the
	// union of both boundary sets; quantile inversion interpolates inside
	// one such segment.
	edges := make([]join.Key, 0, len(a.bounds)+len(b.bounds))
	edges = append(edges, a.bounds...)
	edges = append(edges, b.bounds...)
	slices.Sort(edges)
	edges = slices.Compact(edges)

	total := float64(wa) + float64(wb)
	cdf := func(k join.Key) float64 {
		return float64(wa)*massBelow(a.bounds, k) + float64(wb)*massBelow(b.bounds, k)
	}
	// Cumulative summed mass at each union edge, computed once.
	cum := make([]float64, len(edges))
	for i, e := range edges {
		cum[i] = cdf(e)
	}

	out := make([]join.Key, 0, ns+1)
	out = append(out, edges[0])
	seg := 0
	for q := 1; q < ns; q++ {
		t := total * float64(q) / float64(ns)
		for seg+1 < len(edges)-1 && cum[seg+1] < t {
			seg++
		}
		lo, hi := edges[seg], edges[seg+1]
		c0, c1 := cum[seg], cum[seg+1]
		k := lo
		if c1 > c0 {
			frac := (t - c0) / (c1 - c0)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			// Interpolate in float64 (an int64 hi-lo difference can wrap on
			// half-domain segments) and clamp back into the segment.
			kf := float64(lo) + frac*(float64(hi)-float64(lo))
			k = join.Key(math.Round(kf))
			if k < lo {
				k = lo
			}
			if k > hi {
				k = hi
			}
		}
		// Strictly increasing boundaries only; duplicates collapse (fewer
		// effective buckets, never empty ones), mirroring FromSorted.
		if k > out[len(out)-1] {
			out = append(out, k)
		}
	}
	return &EquiDepth{bounds: appendTop(out, edges[len(edges)-1])}, nil
}

package histogram

import (
	"math"

	"ewh/internal/join"
)

// Drift measures how far two key distributions have diverged as the sup-norm
// distance between their piecewise-uniform CDFs — the Kolmogorov statistic
// of the two histograms, in [0, 1]. Both CDFs are piecewise linear between
// consecutive keys of the UNION of the two boundary sets, so their
// difference is piecewise linear too and attains its supremum at a union
// boundary; evaluating only there is exact, not a sampling approximation.
//
// This is the continuous-join replanner's trigger: the histogram the active
// plan was built from is compared against each arriving window's merged
// summary histogram, and a drift past the configured threshold means the
// plan's region table no longer reflects the stream (§VI adaptivity) — time
// to replan mid-stream.
func Drift(a, b *EquiDepth) float64 {
	var max float64
	for _, bounds := range [2][]join.Key{a.bounds, b.bounds} {
		for _, e := range bounds {
			if d := math.Abs(massBelow(a.bounds, e) - massBelow(b.bounds, e)); d > max {
				max = d
			}
		}
	}
	return max
}

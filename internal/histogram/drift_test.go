package histogram_test

import (
	"math"
	"testing"

	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/stats"
)

func mustBounds(t *testing.T, bounds ...join.Key) *histogram.EquiDepth {
	t.Helper()
	h, err := histogram.FromBounds(bounds)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDriftIdentical(t *testing.T) {
	h := mustBounds(t, 0, 10, 20, 40)
	if d := histogram.Drift(h, h); d != 0 {
		t.Fatalf("self drift = %v, want 0", d)
	}
	// Same distribution expressed at different resolutions: uniform over
	// [0, 40) as 2 buckets vs 4 buckets — CDFs coincide everywhere.
	a := mustBounds(t, 0, 20, 40)
	b := mustBounds(t, 0, 10, 20, 30, 40)
	if d := histogram.Drift(a, b); d > 1e-12 {
		t.Fatalf("resolution-only drift = %v, want ~0", d)
	}
}

func TestDriftSymmetricAndBounded(t *testing.T) {
	rng := stats.NewRNG(7)
	low := make([]join.Key, 4000)
	high := make([]join.Key, 4000)
	for i := range low {
		low[i] = join.Key(rng.Int64n(1000))
		high[i] = join.Key(5000 + rng.Int64n(1000))
	}
	a := buildShard(t, low, 16)
	b := buildShard(t, high, 16)
	ab, ba := histogram.Drift(a, b), histogram.Drift(b, a)
	if ab != ba {
		t.Fatalf("asymmetric drift: %v vs %v", ab, ba)
	}
	// Disjoint supports: one CDF reaches 1 before the other leaves 0.
	if ab < 0.999 || ab > 1 {
		t.Fatalf("disjoint-support drift = %v, want ~1", ab)
	}
}

// TestDriftMonotoneInShift checks the metric grows as a distribution slides
// further from the reference — the property the replanner's threshold
// comparison relies on.
func TestDriftMonotoneInShift(t *testing.T) {
	rng := stats.NewRNG(11)
	base := make([]join.Key, 6000)
	for i := range base {
		base[i] = join.Key(rng.Int64n(10000))
	}
	ref := buildShard(t, base, 24)
	prev := 0.0
	for _, shift := range []join.Key{0, 1000, 3000, 6000, 12000} {
		moved := make([]join.Key, len(base))
		for i, k := range base {
			moved[i] = k + shift
		}
		d := histogram.Drift(ref, buildShard(t, moved, 24))
		if d < prev {
			t.Fatalf("drift %v at shift %d below %v at smaller shift", d, shift, prev)
		}
		if math.IsNaN(d) || d < 0 || d > 1 {
			t.Fatalf("drift %v out of [0,1]", d)
		}
		prev = d
	}
	if prev < 0.999 {
		t.Fatalf("fully shifted drift = %v, want ~1", prev)
	}
}

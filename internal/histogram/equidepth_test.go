package histogram_test

import (
	"slices"
	"testing"
	"testing/quick"

	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/stats"
)

func TestFromSampleErrors(t *testing.T) {
	if _, err := histogram.FromSample(nil, 4); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := histogram.FromSample([]join.Key{1}, 0); err == nil {
		t.Error("ns=0 accepted")
	}
}

func TestSingleKeySample(t *testing.T) {
	h, err := histogram.FromSample([]join.Key{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 1 {
		t.Fatalf("got %d buckets, want 1", h.Buckets())
	}
	if h.Bucket(7) != 0 || h.Bucket(100) != 0 || h.Bucket(-5) != 0 {
		t.Error("all keys must route to the single bucket")
	}
}

func TestEquiDepthBalance(t *testing.T) {
	r := stats.NewRNG(1)
	keys := make([]join.Key, 40000)
	for i := range keys {
		keys[i] = r.Int64n(1 << 30)
	}
	const ns = 16
	h, err := histogram.FromSample(keys, ns)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != ns {
		t.Fatalf("got %d buckets, want %d", h.Buckets(), ns)
	}
	counts := make([]int, ns)
	for _, k := range keys {
		counts[h.Bucket(k)]++
	}
	want := len(keys) / ns
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("bucket %d holds %d keys, want ~%d", i, c, want)
		}
	}
}

func TestEquiDepthSkewedBalance(t *testing.T) {
	// Even under heavy key skew, equi-depth buckets hold ~equal tuple counts.
	r := stats.NewRNG(2)
	z := stats.NewZipf(1000, 1.0)
	keys := make([]join.Key, 50000)
	for i := range keys {
		keys[i] = z.Draw(r)
	}
	h, err := histogram.FromSample(keys, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, h.Buckets())
	for _, k := range keys {
		counts[h.Bucket(k)]++
	}
	want := len(keys) / h.Buckets()
	for i, c := range counts {
		// Skewed heads force wide tolerances: a single heavy key cannot be
		// split across buckets, so allow 2x.
		if c > 2*want {
			t.Errorf("bucket %d holds %d keys, want <= %d", i, c, 2*want)
		}
	}
}

func TestBucketLookupConsistent(t *testing.T) {
	sample := []join.Key{1, 2, 3, 10, 11, 12, 100, 101, 102, 1000, 1001, 1002}
	h, err := histogram.FromSample(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(k16 int16) bool {
		k := join.Key(k16)
		b := h.Bucket(k)
		if b < 0 || b >= h.Buckets() {
			return false
		}
		lo, hi := h.Bounds(b)
		if k >= lo && k < hi {
			return true
		}
		// Out-of-domain keys clamp to edge buckets.
		return (b == 0 && k < lo) || (b == h.Buckets()-1 && k >= hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsAreSortedAndDistinct(t *testing.T) {
	r := stats.NewRNG(3)
	keys := make([]join.Key, 1000)
	for i := range keys {
		keys[i] = r.Int64n(50) // many duplicates
	}
	h, err := histogram.FromSample(keys, 32)
	if err != nil {
		t.Fatal(err)
	}
	b := h.Boundaries()
	if !slices.IsSorted(b) {
		t.Fatal("boundaries not sorted")
	}
	for i := 1; i < len(b); i++ {
		if b[i] == b[i-1] {
			t.Fatal("duplicate boundary produced an empty bucket")
		}
	}
}

func TestBucketRange(t *testing.T) {
	h, err := histogram.FromSample([]join.Key{0, 10, 20, 30, 40, 50, 60, 70}, 4)
	if err != nil {
		t.Fatal(err)
	}
	first, last, ok := h.BucketRange(15, 45)
	if !ok || first > last {
		t.Fatalf("BucketRange(15,45) = (%d,%d,%v)", first, last, ok)
	}
	if _, _, ok := h.BucketRange(5, 4); ok {
		t.Error("inverted range should not be ok")
	}
	// Full-domain range covers all buckets.
	first, last, _ = h.BucketRange(join.MinKey, join.MaxKey)
	if first != 0 || last != h.Buckets()-1 {
		t.Errorf("full range = (%d,%d), want (0,%d)", first, last, h.Buckets()-1)
	}
}

func TestFromSortedNoCopySemantics(t *testing.T) {
	sorted := []join.Key{1, 2, 3, 4, 5, 6, 7, 8}
	h, err := histogram.FromSorted(sorted, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 2 {
		t.Fatalf("got %d buckets", h.Buckets())
	}
	lo, hi := h.Bounds(0)
	if lo != 1 || hi != 5 {
		t.Errorf("bucket 0 = [%d,%d), want [1,5)", lo, hi)
	}
}

func TestBucketRangeJoinableQueries(t *testing.T) {
	// The planner's candidate counting uses BucketRange with joinable key
	// ranges; verify clamping against a known layout.
	h, err := histogram.FromSample([]join.Key{0, 100, 200, 300, 400, 500, 600, 700}, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Range covering exactly one bucket.
	first, last, ok := h.BucketRange(150, 180)
	if !ok || first != last {
		t.Fatalf("BucketRange(150,180) = (%d,%d,%v)", first, last, ok)
	}
	// Range below the domain clamps to bucket 0.
	first, last, _ = h.BucketRange(-100, -50)
	if first != 0 || last != 0 {
		t.Fatalf("below-domain range = (%d,%d)", first, last)
	}
	// Range above the domain clamps to the last bucket.
	first, last, _ = h.BucketRange(10000, 20000)
	if first != h.Buckets()-1 || last != h.Buckets()-1 {
		t.Fatalf("above-domain range = (%d,%d)", first, last)
	}
}

func TestFromSampleHugeNS(t *testing.T) {
	// Requesting more buckets than sample values degrades to one bucket per
	// distinct value.
	h, err := histogram.FromSample([]join.Key{5, 1, 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() > 3 {
		t.Fatalf("%d buckets from 3 values", h.Buckets())
	}
	for _, k := range []join.Key{1, 3, 5} {
		b := h.Bucket(k)
		lo, hi := h.Bounds(b)
		if k < lo || k >= hi {
			t.Fatalf("key %d outside its bucket [%d,%d)", k, lo, hi)
		}
	}
}

func TestNegativeKeys(t *testing.T) {
	keys := []join.Key{-500, -400, -300, -200, -100, 0, 100, 200}
	h, err := histogram.FromSample(keys, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, h.Buckets())
	for _, k := range keys {
		counts[h.Bucket(k)]++
	}
	for i, c := range counts {
		if c != 2 {
			t.Fatalf("bucket %d holds %d keys, want 2", i, c)
		}
	}
}

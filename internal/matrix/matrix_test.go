package matrix

import (
	"testing"

	"ewh/internal/cost"
	"ewh/internal/histogram"
	"ewh/internal/join"
	"ewh/internal/sample"
	"ewh/internal/stats"
)

// buildTestSample creates a realistic MS from random relations.
func buildTestSample(t *testing.T, n, ns int, beta int64, so int, seed uint64) (*Sample, []join.Key, []join.Key, join.Condition) {
	t.Helper()
	r := stats.NewRNG(seed)
	r1 := make([]join.Key, n)
	r2 := make([]join.Key, n)
	for i := range r1 {
		r1[i] = r.Int64n(int64(n))
		r2[i] = r.Int64n(int64(n))
	}
	cond := join.NewBand(beta)
	rh, err := histogram.FromSample(r1, ns)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := histogram.FromSample(r2, ns)
	if err != nil {
		t.Fatal(err)
	}
	out := sample.StreamSample(r1, r2, cond, so, 4, r)
	sm, err := BuildSample(rh, ch, cond, out.Pairs, out.M, n, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sm, r1, r2, cond
}

func TestBuildSampleBasic(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 2000, 16, 3, 200, 1)
	if sm.Rows != 16 || sm.Cols != 16 {
		t.Fatalf("dims %dx%d, want 16x16", sm.Rows, sm.Cols)
	}
	if sm.Scale <= 0 {
		t.Fatal("scale not set despite output sample")
	}
	// Total hits must equal the sample size.
	if got := sm.Hits(0, sm.Rows-1, 0, sm.Cols-1); got != int64(sm.SampleSize) {
		t.Fatalf("total hits %d, want %d", got, sm.SampleSize)
	}
	// Total output estimate must equal M (scale * so = M by construction).
	tot := sm.Output(0, sm.Rows-1, 0, sm.Cols-1)
	if tot < float64(sm.M)*0.999 || tot > float64(sm.M)*1.001 {
		t.Fatalf("total output %v, want ~%d", tot, sm.M)
	}
}

func TestBuildSampleErrors(t *testing.T) {
	rh, _ := histogram.FromSample([]join.Key{1, 2, 3, 4}, 2)
	if _, err := BuildSample(rh, rh, join.Equi{}, [][2]join.Key{{1, 1}}, 0, 4, 4, 0); err == nil {
		t.Error("pairs with m=0 accepted")
	}
}

func TestCandidateSpansMonotone(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 3000, 32, 5, 300, 2)
	for i := 1; i < sm.Rows; i++ {
		if sm.CandLo[i] < sm.CandLo[i-1] || sm.CandHi[i] < sm.CandHi[i-1] {
			t.Fatalf("candidate spans not monotone at row %d", i)
		}
	}
}

func TestCandidateSpansNoFalseNegatives(t *testing.T) {
	// Every output-sample hit must land in a candidate cell.
	sm, _, _, _ := buildTestSample(t, 2000, 16, 2, 400, 3)
	for i := 0; i < sm.Rows; i++ {
		cols, _ := sm.RowHits(i)
		for _, c := range cols {
			if int(c) < sm.CandLo[i] || int(c) > sm.CandHi[i] {
				t.Fatalf("hit at (%d,%d) outside candidate span [%d,%d]",
					i, c, sm.CandLo[i], sm.CandHi[i])
			}
		}
	}
}

func TestEnforceMonotoneSpansPrefixSuffix(t *testing.T) {
	lo := []int{1, 1, 3, 5, 1, 1}
	hi := []int{0, 0, 4, 7, 0, 0}
	enforceMonotoneSpans(lo, hi)
	for i := 1; i < len(lo); i++ {
		if lo[i] < lo[i-1] || hi[i] < hi[i-1] {
			t.Fatalf("spans not monotone after patch: lo=%v hi=%v", lo, hi)
		}
	}
	// Patched empty rows stay empty.
	for _, i := range []int{0, 1, 4, 5} {
		if lo[i] <= hi[i] {
			t.Errorf("row %d became non-empty: [%d,%d]", i, lo[i], hi[i])
		}
	}
	// Non-empty rows unchanged.
	if lo[2] != 3 || hi[2] != 4 || lo[3] != 5 || hi[3] != 7 {
		t.Errorf("non-empty rows mutated: lo=%v hi=%v", lo, hi)
	}
}

func TestSampleInputWeight(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 1600, 16, 1, 100, 4)
	got := sm.Input(0, 3, 0, 7)
	want := 4*sm.RowUnit + 8*sm.ColUnit
	if got != want {
		t.Fatalf("Input = %v, want %v", got, want)
	}
}

func TestCandCountUniformMode(t *testing.T) {
	// CSI mode: unitCand only, no pairs.
	keys := []join.Key{0, 10, 20, 30, 40, 50, 60, 70}
	rh, _ := histogram.FromSample(keys, 8)
	ch, _ := histogram.FromSample(keys, 8)
	sm, err := BuildSample(rh, ch, join.NewBand(5), nil, 0, 8, 8, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Scale != 0 || sm.UnitCand != 2.0 {
		t.Fatalf("scale=%v unitCand=%v", sm.Scale, sm.UnitCand)
	}
	// Band 5 over buckets of width 10: each row is candidate with its own
	// column and adjacent ones that overlap within 5.
	cc := sm.CandCount(0, sm.Rows-1, 0, sm.Cols-1)
	if cc <= 0 {
		t.Fatal("no candidates found")
	}
	if got := sm.Output(0, sm.Rows-1, 0, sm.Cols-1); got != 2.0*float64(cc) {
		t.Fatalf("uniform output %v, want %v", got, 2.0*float64(cc))
	}
}

func TestDenseCoarsenPreservesTotals(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 2000, 32, 3, 500, 5)
	rowCuts := []int{0, 8, 16, 24, 32}
	colCuts := []int{0, 10, 20, 32}
	d := Coarsen(sm, rowCuts, colCuts)
	if d.Rows != 4 || d.Cols != 3 {
		t.Fatalf("dims %dx%d", d.Rows, d.Cols)
	}
	model := cost.Model{Wi: 1, Wo: 1}
	// Total output preserved.
	gotOut := d.Output(d.Full())
	wantOut := sm.Output(0, sm.Rows-1, 0, sm.Cols-1)
	if diff := gotOut - wantOut; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("coarsened total output %v, want %v", gotOut, wantOut)
	}
	// Total input preserved.
	gotIn := d.Input(d.Full())
	wantIn := sm.Input(0, sm.Rows-1, 0, sm.Cols-1)
	if diff := gotIn - wantIn; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("coarsened total input %v, want %v", gotIn, wantIn)
	}
	_ = model
}

func TestDenseOutputMatchesSampleRegions(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 2000, 24, 4, 400, 6)
	rowCuts := []int{0, 6, 12, 18, 24}
	colCuts := []int{0, 6, 12, 18, 24}
	d := Coarsen(sm, rowCuts, colCuts)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			r := Rect{R0: i, C0: j, R1: i, C1: j}
			got := d.Output(r)
			want := sm.Output(rowCuts[i], rowCuts[i+1]-1, colCuts[j], colCuts[j+1]-1)
			if diff := got - want; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("cell (%d,%d) output %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestMinimalCandidateRectMatchesScan(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 3000, 32, 6, 500, 7)
	d := Coarsen(sm, evenCutsForTest(32, 16), evenCutsForTest(32, 16))
	r := stats.NewRNG(8)
	for trial := 0; trial < 500; trial++ {
		r0 := r.Intn(d.Rows)
		r1 := r0 + r.Intn(d.Rows-r0)
		c0 := r.Intn(d.Cols)
		c1 := c0 + r.Intn(d.Cols-c0)
		rect := Rect{R0: r0, C0: c0, R1: r1, C1: c1}
		fast, fok := d.MinimalCandidateRect(rect)
		slow, sok := scanRect(d, rect)
		if fok != sok {
			t.Fatalf("rect %+v: fast ok=%v scan ok=%v", rect, fok, sok)
		}
		if fok && fast != slow {
			t.Fatalf("rect %+v: fast %+v != scan %+v", rect, fast, slow)
		}
	}
}

// scanRect is the brute-force reference for MinimalCandidateRect.
func scanRect(d *Dense, r Rect) (Rect, bool) {
	out := Rect{R0: -1}
	for i := r.R0; i <= r.R1; i++ {
		lo, hi := d.CandLo[i], d.CandHi[i]
		if lo < r.C0 {
			lo = r.C0
		}
		if hi > r.C1 {
			hi = r.C1
		}
		if lo > hi {
			continue
		}
		if out.R0 < 0 {
			out.R0, out.C0, out.C1 = i, lo, hi
		} else {
			if lo < out.C0 {
				out.C0 = lo
			}
			if hi > out.C1 {
				out.C1 = hi
			}
		}
		out.R1 = i
	}
	if out.R0 < 0 {
		return Rect{}, false
	}
	return out, true
}

func evenCutsForTest(n, k int) []int {
	cuts := make([]int, 0, k+1)
	for i := 0; i <= k; i++ {
		c := n * i / k
		if len(cuts) == 0 || c > cuts[len(cuts)-1] {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

func TestRectHelpers(t *testing.T) {
	r := Rect{R0: 1, C0: 2, R1: 3, C1: 5}
	if r.Empty() {
		t.Error("non-empty rect reported empty")
	}
	if r.SemiPerimeter() != 3+4 {
		t.Errorf("semi-perimeter %d, want 7", r.SemiPerimeter())
	}
	if (Rect{R0: 2, R1: 1, C0: 0, C1: 0}).Empty() == false {
		t.Error("inverted rect not empty")
	}
	r2 := Rect{R0: 1, C0: 2, R1: 3, C1: 5}
	if r.Key() != r2.Key() {
		t.Error("equal rects have different keys")
	}
	if r.Key() == (Rect{R0: 1, C0: 2, R1: 3, C1: 6}).Key() {
		t.Error("different rects share a key")
	}
}

func TestMaxCandCellWeight(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 2000, 16, 2, 300, 9)
	d := Coarsen(sm, evenCutsForTest(16, 8), evenCutsForTest(16, 8))
	model := cost.Model{Wi: 1, Wo: 0.2}
	got := d.MaxCandCellWeight(model)
	max := 0.0
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			if d.Candidate(i, j) {
				if w := d.Weight(model, Rect{R0: i, C0: j, R1: i, C1: j}); w > max {
					max = w
				}
			}
		}
	}
	if got != max {
		t.Fatalf("MaxCandCellWeight = %v, brute force %v", got, max)
	}
}

func TestSampleMaxCellWeightBound(t *testing.T) {
	// Lemma 3.1's σ: max cell weight must be at least the input-only floor
	// and at least every hit cell's weight.
	sm, _, _, _ := buildTestSample(t, 2000, 16, 2, 300, 10)
	model := cost.Model{Wi: 1, Wo: 0.2}
	sigma := sm.MaxCellWeight(model)
	floor := model.Weight(sm.RowUnit+sm.ColUnit, 0)
	if sigma < floor {
		t.Fatalf("σ = %v below input floor %v", sigma, floor)
	}
}

func TestScaleRegionsPreservesStructure(t *testing.T) {
	sm, _, _, _ := buildTestSample(t, 2000, 24, 3, 400, 11)
	d := Coarsen(sm, evenCutsForTest(24, 8), evenCutsForTest(24, 8))
	rect := Rect{R0: 1, C0: 1, R1: 3, C1: 4}
	before := d.Output(rect)
	outside := d.Output(Rect{R0: 5, C0: 5, R1: 7, C1: 7})
	scaled := d.ScaleRegions([]Rect{rect}, []float64{2})
	if got := scaled.Output(rect); got < before*1.99 || got > before*2.01 {
		t.Fatalf("scaled region output %v, want ~%v", got, before*2)
	}
	if got := scaled.Output(Rect{R0: 5, C0: 5, R1: 7, C1: 7}); got < outside*0.9999 || got > outside*1.0001 {
		t.Fatalf("untouched region changed: %v != %v", got, outside)
	}
	// Input weights and candidate structure must be untouched.
	if scaled.Input(scaled.Full()) != d.Input(d.Full()) {
		t.Fatal("input weights changed")
	}
	for i := 0; i < d.Rows; i++ {
		if scaled.CandLo[i] != d.CandLo[i] || scaled.CandHi[i] != d.CandHi[i] {
			t.Fatal("candidate spans changed")
		}
	}
}

func TestRectFromKeyRoundTrip(t *testing.T) {
	r := Rect{R0: 3, C0: 7, R1: 200, C1: 65535}
	if got := RectFromKey(r.Key()); got != r {
		t.Fatalf("round trip %+v != %+v", got, r)
	}
}

func TestDenseAccessors(t *testing.T) {
	bounds := []join.Key{0, 10, 20}
	d := NewDense(2, 2,
		[]float64{1, 2, 3, 4},
		[]float64{5, 7}, []float64{6, 8},
		bounds, bounds,
		[]int{0, 0}, []int{1, 1})
	if d.CellOutput(0, 1) != 2 || d.CellOutput(1, 0) != 3 {
		t.Fatal("CellOutput wrong")
	}
	if d.RowIn(1) != 7 || d.ColIn(0) != 6 {
		t.Fatal("band input accessors wrong")
	}
}

// Package matrix models the join matrix of §II: rows are R1 join-key ranges,
// columns are R2 join-key ranges, and cell (i,j) may hold output tuples iff
// it is a candidate cell for the join condition.
//
// Two representations are provided. Sample is the ns×ns sample matrix MS
// (§III-A); because ns = √(2nJ) can reach tens of thousands while only
// so = Θ(ns) cells receive output-sample hits, Sample stores per-row sparse
// hit lists and per-row candidate spans (monotonic joins make candidate
// cells consecutive per row). Dense is the coarsened matrix MC (§III-B);
// nc = 2J is small, so Dense keeps full prefix sums for O(1) region weights,
// which the tiling algorithms rely on.
package matrix

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"ewh/internal/cost"
	"ewh/internal/histogram"
	"ewh/internal/join"
)

// Sample is the sparse sample matrix MS. Cell output estimates come from a
// uniform random output sample (Scale · hits) and/or a uniform constant per
// candidate cell (UnitCand · candidates). The CSIO scheme uses the former;
// the CSI baseline, which has no output statistics, uses the latter (§II-B:
// "assigns a constant to each candidate cell").
type Sample struct {
	Rows, Cols int

	// RowBounds and ColBounds are the half-open key ranges of the grid bands:
	// row i covers keys [RowBounds[i], RowBounds[i+1]).
	RowBounds, ColBounds []join.Key

	// RowUnit and ColUnit are the input tuples represented by one row/column
	// band (n1/ns1, n2/ns2): the expected equi-depth bucket size.
	RowUnit, ColUnit float64

	// CandLo and CandHi give the inclusive candidate column span of each row;
	// CandLo[i] > CandHi[i] means the row has no candidates. Both arrays are
	// nondecreasing (monotonic join staircase).
	CandLo, CandHi []int

	// Scale converts an output-sample hit count to estimated output tuples
	// (M/so). Zero when no output sample was collected.
	Scale float64

	// UnitCand is the assumed output per candidate cell for schemes without
	// output statistics. Zero for CSIO.
	UnitCand float64

	// M is the exact join output size when known (from Stream-Sample), else 0.
	M int64

	// SampleSize is the number of output-sample pairs MS was built from.
	SampleSize int

	hitCols [][]int32 // per row: sorted distinct candidate cols with hits
	hitCnt  [][]int32 // parallel counts
}

// BuildSample constructs MS from the two equi-depth histograms, the join
// condition (for candidate spans) and the output sample (pairs, m). n1 and
// n2 are the relation sizes. Pass an empty pairs slice and m=0 together with
// unitCand > 0 to build the CSI-style uniform matrix.
func BuildSample(rh, ch *histogram.EquiDepth, cond join.Condition,
	pairs [][2]join.Key, m int64, n1, n2 int, unitCand float64) (*Sample, error) {

	rows, cols := rh.Buckets(), ch.Buckets()
	if rows == 0 || cols == 0 {
		return nil, fmt.Errorf("matrix: empty histogram (rows=%d cols=%d)", rows, cols)
	}
	s := &Sample{
		Rows:       rows,
		Cols:       cols,
		RowBounds:  rh.Boundaries(),
		ColBounds:  ch.Boundaries(),
		RowUnit:    float64(n1) / float64(rows),
		ColUnit:    float64(n2) / float64(cols),
		CandLo:     make([]int, rows),
		CandHi:     make([]int, rows),
		UnitCand:   unitCand,
		M:          m,
		SampleSize: len(pairs),
		hitCols:    make([][]int32, rows),
		hitCnt:     make([][]int32, rows),
	}
	if len(pairs) > 0 {
		if m <= 0 {
			return nil, fmt.Errorf("matrix: output sample of %d pairs but m = %d", len(pairs), m)
		}
		s.Scale = float64(m) / float64(len(pairs))
	}

	// Candidate spans per row from the joinable range of the row's key range.
	// Edge bands are widened to ±∞ for candidacy: at routing time keys the
	// sample missed clamp into the edge buckets, so output involving them
	// must still land in covered (candidate) cells. The last column band is
	// likewise open-ended, so jHi comparisons use the widened upper bound.
	cb := s.ColBounds
	for i := 0; i < rows; i++ {
		rLo, rHi := rh.Bounds(i)
		if i == 0 {
			rLo = join.MinKey
		}
		if i == rows-1 {
			rHi = join.MaxKey
		}
		jLo, _ := cond.JoinableRange(rLo)
		_, jHi := cond.JoinableRange(rHi - 1)
		// First column whose (widened) upper bound exceeds jLo.
		lo := sort.Search(cols, func(j int) bool {
			if j == cols-1 {
				return true // last column is open-ended upward
			}
			return cb[j+1] > jLo
		})
		// Last column whose (widened) lower bound is <= jHi.
		hi := sort.Search(cols, func(j int) bool {
			if j == 0 {
				return false // first column is open-ended downward
			}
			return cb[j] > jHi
		}) - 1
		if lo >= cols || hi < 0 || lo > hi {
			s.CandLo[i], s.CandHi[i] = 1, 0 // empty span
			continue
		}
		s.CandLo[i], s.CandHi[i] = lo, hi
	}
	enforceMonotoneSpans(s.CandLo, s.CandHi)

	// Place output-sample hits.
	if len(pairs) > 0 {
		type cell struct{ r, c int32 }
		counts := make(map[cell]int32, len(pairs))
		for _, p := range pairs {
			counts[cell{int32(rh.Bucket(p[0])), int32(ch.Bucket(p[1]))}]++
		}
		perRow := make(map[int32][]cell)
		for c := range counts {
			perRow[c.r] = append(perRow[c.r], c)
		}
		for r, cs := range perRow {
			slices.SortFunc(cs, func(a, b cell) int { return cmp.Compare(a.c, b.c) })
			colsArr := make([]int32, len(cs))
			cntArr := make([]int32, len(cs))
			for i, c := range cs {
				colsArr[i] = c.c
				cntArr[i] = counts[c]
			}
			s.hitCols[r] = colsArr
			s.hitCnt[r] = cntArr
		}
	}
	return s, nil
}

// enforceMonotoneSpans patches empty rows so both span arrays stay
// nondecreasing: an empty row inherits the next non-empty row's lo and the
// previous non-empty row's hi. For monotonic joins empty rows can only form
// a prefix and/or suffix (the rows whose joinable interval intersects the
// fixed column domain are contiguous), so patched rows stay empty (lo > hi)
// while preserving the staircase the monotonic queries rely on.
func enforceMonotoneSpans(lo, hi []int) {
	n := len(lo)
	empty := make([]bool, n)
	for i := range lo {
		empty[i] = lo[i] > hi[i]
	}
	nextLo := int(^uint(0) >> 1) // max int
	for i := n - 1; i >= 0; i-- {
		if empty[i] {
			lo[i] = nextLo
		} else {
			nextLo = lo[i]
		}
	}
	prevHi := -1
	for i := 0; i < n; i++ {
		if empty[i] {
			hi[i] = prevHi
		} else {
			prevHi = hi[i]
		}
	}
}

// RowEmpty reports whether row i has no candidate cells.
func (s *Sample) RowEmpty(i int) bool { return s.CandLo[i] > s.CandHi[i] }

// CandCount returns the number of candidate cells in the rectangle with
// inclusive row range [r0,r1] and column range [c0,c1].
func (s *Sample) CandCount(r0, r1, c0, c1 int) int64 {
	var n int64
	for i := r0; i <= r1; i++ {
		lo, hi := s.CandLo[i], s.CandHi[i]
		if lo < c0 {
			lo = c0
		}
		if hi > c1 {
			hi = c1
		}
		if lo <= hi {
			n += int64(hi - lo + 1)
		}
	}
	return n
}

// Hits returns the total output-sample hit count within the rectangle.
func (s *Sample) Hits(r0, r1, c0, c1 int) int64 {
	var n int64
	for i := r0; i <= r1; i++ {
		cols := s.hitCols[i]
		if len(cols) == 0 {
			continue
		}
		lo, _ := slices.BinarySearch(cols, int32(c0))
		hi, _ := slices.BinarySearch(cols, int32(c1)+1)
		for j := lo; j < hi; j++ {
			n += int64(s.hitCnt[i][j])
		}
	}
	return n
}

// RowHits returns row i's sparse hit list (sorted cols, parallel counts).
// Callers must not mutate the slices.
func (s *Sample) RowHits(i int) (cols []int32, cnt []int32) {
	return s.hitCols[i], s.hitCnt[i]
}

// Output returns the estimated output tuples of the rectangle:
// Scale·hits + UnitCand·candidates.
func (s *Sample) Output(r0, r1, c0, c1 int) float64 {
	var out float64
	if s.Scale > 0 {
		out += s.Scale * float64(s.Hits(r0, r1, c0, c1))
	}
	if s.UnitCand > 0 {
		out += s.UnitCand * float64(s.CandCount(r0, r1, c0, c1))
	}
	return out
}

// Input returns the input tuples of the rectangle: its semi-perimeter in
// band units times the per-band tuple counts.
func (s *Sample) Input(r0, r1, c0, c1 int) float64 {
	return float64(r1-r0+1)*s.RowUnit + float64(c1-c0+1)*s.ColUnit
}

// Weight returns the modeled work of the rectangle.
func (s *Sample) Weight(m cost.Model, r0, r1, c0, c1 int) float64 {
	return m.Weight(s.Input(r0, r1, c0, c1), s.Output(r0, r1, c0, c1))
}

// MaxCellWeight returns σ, the maximum single-cell weight over candidate
// cells (Lemma 3.1's quantity). Cells without hits weigh
// model.Weight(RowUnit+ColUnit, UnitCand); cells with hits add Scale·cnt.
func (s *Sample) MaxCellWeight(m cost.Model) float64 {
	base := m.Weight(s.RowUnit+s.ColUnit, s.UnitCand)
	max := 0.0
	any := false
	for i := 0; i < s.Rows; i++ {
		if !s.RowEmpty(i) {
			any = true
			if base > max {
				max = base
			}
		}
		for _, c := range s.hitCnt[i] {
			w := m.Weight(s.RowUnit+s.ColUnit, s.UnitCand+s.Scale*float64(c))
			if w > max {
				max = w
			}
		}
	}
	if !any {
		return 0
	}
	return max
}

// TotalWeight returns the weight of the whole matrix treated as one region:
// the no-replication lower bound w(M) used to derive wOPT (§III-A).
func (s *Sample) TotalWeight(m cost.Model) float64 {
	return s.Weight(m, 0, s.Rows-1, 0, s.Cols-1)
}

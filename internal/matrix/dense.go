package matrix

import (
	"slices"

	"ewh/internal/cost"
	"ewh/internal/join"
)

// Rect is an inclusive cell rectangle [R0..R1] × [C0..C1] in matrix
// coordinates. An empty rectangle has R0 > R1 (or C0 > C1).
type Rect struct {
	R0, C0, R1, C1 int
}

// Empty reports whether the rectangle contains no cells.
func (r Rect) Empty() bool { return r.R0 > r.R1 || r.C0 > r.C1 }

// SemiPerimeter returns (rows + cols), the tiling processing order key of
// MonotonicBSP (Algorithm 2, line 3).
func (r Rect) SemiPerimeter() int { return (r.R1 - r.R0 + 1) + (r.C1 - r.C0 + 1) }

// Key packs the rectangle into a map key; coordinates must fit in 16 bits,
// which holds for nc = 2J matrices by a wide margin.
func (r Rect) Key() uint64 {
	return uint64(uint16(r.R0))<<48 | uint64(uint16(r.C0))<<32 |
		uint64(uint16(r.R1))<<16 | uint64(uint16(r.C1))
}

// RectFromKey inverts Key.
func RectFromKey(k uint64) Rect {
	return Rect{
		R0: int(uint16(k >> 48)),
		C0: int(uint16(k >> 32)),
		R1: int(uint16(k >> 16)),
		C1: int(uint16(k)),
	}
}

// Dense is the coarsened matrix MC: a small nc×nc weighted grid with O(1)
// region weights via prefix sums, candidate spans per row, and O(log nc)
// minimal-candidate-rectangle queries via the monotone staircase (Lemma 3.4).
type Dense struct {
	Rows, Cols int

	// RowBounds and ColBounds give each band's half-open key range.
	RowBounds, ColBounds []join.Key

	// CandLo and CandHi are the per-row inclusive candidate column spans,
	// both nondecreasing; lo > hi means no candidates in the row.
	CandLo, CandHi []int

	rowInPre, colInPre []float64 // prefix sums of per-band input tuples
	outPre             []float64 // (Rows+1)×(Cols+1) prefix sums of cell output

	// Compacted view over rows that have candidates, for minimal-rect queries.
	candRows   []int // sorted row indices with candidates
	cLoC, cHiC []int // spans over candRows (monotone)
}

// NewDense builds a Dense matrix from explicit per-cell output estimates
// (row-major, len Rows*Cols), per-band input tuple counts and key bounds.
// candLo/candHi must be the monotone candidate spans.
func NewDense(rows, cols int, out []float64, rowIn, colIn []float64,
	rowBounds, colBounds []join.Key, candLo, candHi []int) *Dense {

	d := &Dense{
		Rows: rows, Cols: cols,
		RowBounds: rowBounds, ColBounds: colBounds,
		CandLo: candLo, CandHi: candHi,
	}
	d.rowInPre = prefix1D(rowIn)
	d.colInPre = prefix1D(colIn)
	d.outPre = make([]float64, (rows+1)*(cols+1))
	w := cols + 1
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			d.outPre[(i+1)*w+j+1] = out[i*cols+j] +
				d.outPre[i*w+j+1] + d.outPre[(i+1)*w+j] - d.outPre[i*w+j]
		}
	}
	for i := 0; i < rows; i++ {
		if candLo[i] <= candHi[i] {
			d.candRows = append(d.candRows, i)
			d.cLoC = append(d.cLoC, candLo[i])
			d.cHiC = append(d.cHiC, candHi[i])
		}
	}
	return d
}

func prefix1D(v []float64) []float64 {
	p := make([]float64, len(v)+1)
	for i, x := range v {
		p[i+1] = p[i] + x
	}
	return p
}

// Coarsen groups the sample matrix's rows and columns by the given cut index
// vectors (rowCuts[0]=0 < ... < rowCuts[k]=sm.Rows) into a Dense MC. Cell
// output is the summed estimate of the covered MS cells; per-band input is
// span × MS band unit; candidate spans are the per-band unions mapped to
// column-band indices.
func Coarsen(sm *Sample, rowCuts, colCuts []int) *Dense {
	rows, cols := len(rowCuts)-1, len(colCuts)-1
	out := make([]float64, rows*cols)
	rowIn := make([]float64, rows)
	colIn := make([]float64, cols)
	candLo := make([]int, rows)
	candHi := make([]int, rows)
	rowBounds := make([]join.Key, rows+1)
	colBounds := make([]join.Key, cols+1)
	for i := 0; i <= rows; i++ {
		rowBounds[i] = sm.RowBounds[rowCuts[i]]
	}
	for j := 0; j <= cols; j++ {
		colBounds[j] = sm.ColBounds[colCuts[j]]
	}
	for i := 0; i < rows; i++ {
		rowIn[i] = float64(rowCuts[i+1]-rowCuts[i]) * sm.RowUnit
	}
	for j := 0; j < cols; j++ {
		colIn[j] = float64(colCuts[j+1]-colCuts[j]) * sm.ColUnit
	}

	// colOf maps an MS column index to its MC column band.
	colOf := func(c int) int {
		i, _ := slices.BinarySearch(colCuts[1:], c+1)
		return i
	}
	for i := 0; i < rows; i++ {
		msR0, msR1 := rowCuts[i], rowCuts[i+1]-1
		lo, hi := 1, 0
		for r := msR0; r <= msR1; r++ {
			if sm.RowEmpty(r) {
				continue
			}
			if lo > hi {
				lo, hi = sm.CandLo[r], sm.CandHi[r]
			} else {
				if sm.CandLo[r] < lo {
					lo = sm.CandLo[r]
				}
				if sm.CandHi[r] > hi {
					hi = sm.CandHi[r]
				}
			}
		}
		if lo > hi {
			candLo[i], candHi[i] = 1, 0
			continue
		}
		cl, ch := colOf(lo), colOf(hi)
		candLo[i], candHi[i] = cl, ch

		// Output: sample hits scaled, plus uniform per-candidate weight.
		for r := msR0; r <= msR1; r++ {
			hc, cnt := sm.RowHits(r)
			for k, c := range hc {
				out[i*cols+colOf(int(c))] += sm.Scale * float64(cnt[k])
			}
			if sm.UnitCand > 0 && !sm.RowEmpty(r) {
				// Spread the row's candidate count over the touched MC cols.
				rl, rh := sm.CandLo[r], sm.CandHi[r]
				for j := colOf(rl); j <= colOf(rh); j++ {
					il := maxInt(rl, colCuts[j])
					ih := minInt(rh, colCuts[j+1]-1)
					if il <= ih {
						out[i*cols+j] += sm.UnitCand * float64(ih-il+1)
					}
				}
			}
		}
	}
	enforceMonotoneSpans(candLo, candHi)
	return NewDense(rows, cols, out, rowIn, colIn, rowBounds, colBounds, candLo, candHi)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Output returns the estimated output tuples of the rectangle in O(1).
func (d *Dense) Output(r Rect) float64 {
	if r.Empty() {
		return 0
	}
	w := d.Cols + 1
	return d.outPre[(r.R1+1)*w+r.C1+1] - d.outPre[r.R0*w+r.C1+1] -
		d.outPre[(r.R1+1)*w+r.C0] + d.outPre[r.R0*w+r.C0]
}

// Input returns the input tuples of the rectangle: the tuples of the row
// bands plus those of the column bands (the semi-perimeter cost).
func (d *Dense) Input(r Rect) float64 {
	if r.Empty() {
		return 0
	}
	return d.rowInPre[r.R1+1] - d.rowInPre[r.R0] + d.colInPre[r.C1+1] - d.colInPre[r.C0]
}

// Weight returns the modeled work of the rectangle.
func (d *Dense) Weight(m cost.Model, r Rect) float64 {
	if r.Empty() {
		return 0
	}
	return m.Weight(d.Input(r), d.Output(r))
}

// Full returns the rectangle covering the whole matrix.
func (d *Dense) Full() Rect { return Rect{0, 0, d.Rows - 1, d.Cols - 1} }

// Candidate reports whether cell (i, j) is a candidate cell.
func (d *Dense) Candidate(i, j int) bool {
	return d.CandLo[i] <= j && j <= d.CandHi[i]
}

// CandCount returns the number of candidate cells in the rectangle.
func (d *Dense) CandCount(r Rect) int64 {
	var n int64
	for i := r.R0; i <= r.R1 && i < d.Rows; i++ {
		lo, hi := maxInt(d.CandLo[i], r.C0), minInt(d.CandHi[i], r.C1)
		if lo <= hi {
			n += int64(hi - lo + 1)
		}
	}
	return n
}

// MinimalCandidateRect shrinks r to the bounding rectangle of the candidate
// cells it contains (BSP line 3 / Algorithm 2 lines 21-22). ok is false when
// r contains no candidate cells. The monotone staircase makes this an
// O(log nc) query, and Lemma 3.4 guarantees the returned rectangle's
// defining corners are candidate cells.
func (d *Dense) MinimalCandidateRect(r Rect) (Rect, bool) {
	if r.Empty() {
		return Rect{}, false
	}
	// Compacted candidate rows within [R0, R1].
	a, _ := slices.BinarySearch(d.candRows, r.R0)
	bp, _ := slices.BinarySearch(d.candRows, r.R1+1)
	b := bp - 1
	if a > b {
		return Rect{}, false
	}
	// First compacted row whose span reaches C0 (cHiC nondecreasing).
	iOff, _ := slices.BinarySearch(d.cHiC[a:b+1], r.C0)
	i := a + iOff
	// Last compacted row whose span starts at or before C1 (cLoC nondecreasing).
	jOff, _ := slices.BinarySearch(d.cLoC[a:b+1], r.C1+1)
	j := a + jOff - 1
	if i > j {
		return Rect{}, false
	}
	out := Rect{
		R0: d.candRows[i],
		C0: maxInt(r.C0, d.cLoC[i]),
		R1: d.candRows[j],
		C1: minInt(r.C1, d.cHiC[j]),
	}
	return out, true
}

// CellOutput returns cell (i, j)'s output estimate, recovered from the
// prefix sums.
func (d *Dense) CellOutput(i, j int) float64 {
	return d.Output(Rect{R0: i, C0: j, R1: i, C1: j})
}

// RowIn returns row band i's input tuples.
func (d *Dense) RowIn(i int) float64 { return d.rowInPre[i+1] - d.rowInPre[i] }

// ColIn returns column band j's input tuples.
func (d *Dense) ColIn(j int) float64 { return d.colInPre[j+1] - d.colInPre[j] }

// ScaleRegions returns a copy of the matrix with the cell outputs inside
// each rectangle multiplied by the corresponding factor — the feedback
// correction used when measured region outputs diverge from the estimates.
// Rectangles must be disjoint (they are, for any partitioning's regions).
func (d *Dense) ScaleRegions(rects []Rect, factors []float64) *Dense {
	out := make([]float64, d.Rows*d.Cols)
	rowIn := make([]float64, d.Rows)
	colIn := make([]float64, d.Cols)
	for i := 0; i < d.Rows; i++ {
		rowIn[i] = d.RowIn(i)
		for j := 0; j < d.Cols; j++ {
			out[i*d.Cols+j] = d.CellOutput(i, j)
		}
	}
	for j := 0; j < d.Cols; j++ {
		colIn[j] = d.ColIn(j)
	}
	for k, r := range rects {
		for i := r.R0; i <= r.R1; i++ {
			for j := r.C0; j <= r.C1; j++ {
				out[i*d.Cols+j] *= factors[k]
			}
		}
	}
	candLo := append([]int(nil), d.CandLo...)
	candHi := append([]int(nil), d.CandHi...)
	return NewDense(d.Rows, d.Cols, out, rowIn, colIn, d.RowBounds, d.ColBounds, candLo, candHi)
}

// TotalWeight returns the weight of the whole matrix as one region.
func (d *Dense) TotalWeight(m cost.Model) float64 {
	return d.Weight(m, d.Full())
}

// MaxCandCellWeight returns the largest single-cell weight over candidate
// cells: a lower bound on any partitioning's maximum region weight, since a
// region contains at least one cell.
func (d *Dense) MaxCandCellWeight(m cost.Model) float64 {
	max := 0.0
	for i := 0; i < d.Rows; i++ {
		for j := maxInt(0, d.CandLo[i]); j <= d.CandHi[i] && j < d.Cols; j++ {
			w := d.Weight(m, Rect{i, j, i, j})
			if w > max {
				max = w
			}
		}
	}
	return max
}

// Multi-way chain join (§IV-B): orders ⋈ shipments ⋈ deliveries executed as
// a sequence of two EWH-planned 2-way joins, with the skewed intermediate
// result re-partitioned by a fresh equi-weight histogram before the second
// stage.
//
// The scenario: match orders to shipments by pickup time (±60 s), then match
// those shipments to delivery confirmations by drop-off time (±120 s). Both
// timestamp columns are bursty, and the heavy shipment window produces a
// heavily skewed intermediate — exactly the JPS cascade that breaks
// input-only partitioning across stages.
//
//	go run ./examples/multiway
package main

import (
	"fmt"
	"log"

	"ewh"
	"ewh/internal/stats"
)

func main() {
	rng := stats.NewRNG(77)
	const n = 20000
	const week = 7 * 86400

	// Shipments carry two attributes: pickup time (joins orders) and
	// drop-off time (joins deliveries). 30% of pickups fall in one busy hour.
	q := ewh.MultiwayQuery{
		R1:    make([]ewh.Key, n),
		Mid:   ewh.MidRelation{A: make([]ewh.Key, n), B: make([]ewh.Key, n)},
		R3:    make([]ewh.Key, n),
		CondA: ewh.Band(15),
		CondB: ewh.Band(30),
	}
	busy := func(r *stats.RNG) ewh.Key {
		if r.Float64() < 0.3 {
			return 3*86400 + 12*3600 + r.Int64n(3600) // one busy hour midweek
		}
		return r.Int64n(week)
	}
	for i := 0; i < n; i++ {
		q.R1[i] = busy(rng)
		q.Mid.A[i] = busy(rng)
		q.Mid.B[i] = q.Mid.A[i] + 1800 + rng.Int64n(7200) // delivery 0.5-2.5 h later
		q.R3[i] = busy(rng) + 3600
	}

	res, err := ewh.ExecuteMultiway(q, ewh.Options{J: 8, Seed: 9}, ewh.ExecConfig{Seed: 10})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("3-way chain join: %d order-shipment-delivery triples\n", res.Output)
	fmt.Printf("intermediate (order-shipment pairs): %d tuples\n\n", res.Intermediate)
	for i, st := range res.Stages {
		if st.Exec == nil {
			continue
		}
		fmt.Printf("stage %d (%s): output=%d shipped=%d max-work=%.0f plan=%v\n",
			i+1, st.Scheme, st.Exec.Output, st.Exec.NetworkTuples,
			st.Exec.MaxWork, st.PlanDuration.Round(1e6))
	}
}

// Call-log correlation: a time-distance self-join — the paper's motivating
// band-join example (§I: "time-distance joins (e.g. in call logs)").
//
// Two event streams (call setups and drops) are joined on timestamps within
// a 30-second window to pair each setup with nearby drops. Call volume is
// extremely bursty (rush hours), so fixed-width time partitioning would
// assign rush-hour workers orders of magnitude more work; the EWH scheme
// equalizes it.
//
//	go run ./examples/calllog
package main

import (
	"fmt"
	"log"
	"math"

	"ewh"
	"ewh/internal/stats"
)

// burstyTimestamps simulates a day of events (seconds since midnight) with
// two rush-hour peaks around 9h and 18h.
func burstyTimestamps(n int, rng *stats.RNG) []ewh.Key {
	out := make([]ewh.Key, 0, n)
	for len(out) < n {
		// Mixture: 40% morning peak, 40% evening peak, 20% uniform.
		u := rng.Float64()
		var t float64
		switch {
		case u < 0.4:
			t = 9*3600 + gauss(rng)*1800
		case u < 0.8:
			t = 18*3600 + gauss(rng)*1800
		default:
			t = rng.Float64() * 86400
		}
		if t >= 0 && t < 86400 {
			out = append(out, ewh.Key(t))
		}
	}
	return out
}

// gauss draws a standard normal via Box-Muller.
func gauss(rng *stats.RNG) float64 {
	return math.Sqrt(-2*math.Log(rng.Float64Open())) * math.Cos(2*math.Pi*rng.Float64())
}

func main() {
	rng := stats.NewRNG(2024)
	setups := burstyTimestamps(150000, rng.Split())
	drops := burstyTimestamps(150000, rng.Split())

	cond := ewh.Band(30) // drops within ±30 seconds of a setup
	plan, err := ewh.Plan(setups, drops, cond, ewh.Options{J: 12, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	res := ewh.Execute(setups, drops, cond, plan, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 6})

	fmt.Printf("time-distance join: %d setup-drop pairs within 30s\n", res.Output)
	fmt.Printf("workers: %d, max/mean output per worker: ", len(res.Workers))
	var sum int64
	var max int64
	for _, w := range res.Workers {
		sum += w.Output
		if w.Output > max {
			max = w.Output
		}
	}
	mean := float64(sum) / float64(len(res.Workers))
	fmt.Printf("%.2fx (perfect balance = 1.0x)\n", float64(max)/mean)
	fmt.Println("\nper-worker load (each ▇ ≈ 4% of total output):")
	for i, w := range res.Workers {
		bar := ""
		for b := int64(0); b < w.Output*25/sum; b++ {
			bar += "▇"
		}
		fmt.Printf("  worker %2d |%s %d\n", i, bar, w.Output)
	}
}

// Spatial proximity: a space-distance join — the paper's second motivating
// monotonic join (§I: "space-distance joins (e.g. in locating nearby
// objects)").
//
// Parked scooters and ride requests live along a 200 km road network
// (positions in meters, unrolled to one dimension). The join matches every
// request with the scooters within 50 m. Positions cluster around two
// hotspots, producing both redistribution skew and join product skew; the
// example shows the EWH scheme beating 1-Bucket on shipped tuples and
// M-Bucket on output balance.
//
//	go run ./examples/spatial
package main

import (
	"fmt"
	"log"

	"ewh"
	"ewh/internal/stats"
)

const (
	roadLen = 200000 // meters
	hotspot = 10000  // meters per hotspot
)

// hotspotPositions draws positions with 50% of the mass in two hotspots.
func hotspotPositions(n int, rng *stats.RNG) []ewh.Key {
	out := make([]ewh.Key, n)
	for i := range out {
		u := rng.Float64()
		switch {
		case u < 0.3: // downtown
			out[i] = 60000 + rng.Int64n(hotspot)
		case u < 0.5: // campus
			out[i] = 150000 + rng.Int64n(hotspot)
		default:
			out[i] = rng.Int64n(roadLen)
		}
	}
	return out
}

func main() {
	rng := stats.NewRNG(99)
	requests := hotspotPositions(80000, rng.Split())
	scooters := hotspotPositions(80000, rng.Split())

	cond := ewh.Band(50) // scooters within 50 m of a request
	opts := ewh.Options{J: 8, Seed: 3}

	plan, err := ewh.Plan(requests, scooters, cond, opts)
	if err != nil {
		log.Fatal(err)
	}
	if plan.Fallback {
		log.Fatal("unexpected fallback: tune the example's densities")
	}
	oneBucket, err := ewh.PlanOneBucket(opts)
	if err != nil {
		log.Fatal(err)
	}
	mBucket, err := ewh.PlanMBucket(requests, scooters, cond, 800, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("space-distance join: requests x scooters within 50 m, J=8")
	fmt.Printf("%-6s %12s %12s %12s %12s\n", "scheme", "output", "shipped", "max-out", "max-work")
	for _, p := range []*ewh.PlanResult{oneBucket, mBucket, plan} {
		res := ewh.Execute(requests, scooters, cond, p, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 4})
		fmt.Printf("%-6s %12d %12d %12d %12.0f\n",
			p.Scheme.Name(), res.Output, res.NetworkTuples, res.MaxOutput(), res.MaxWork)
	}
	fmt.Println("\nEWH regions (request-position ranges are narrow inside hotspots,")
	fmt.Println("wide in the countryside — equal work, not equal geography):")
	for i, reg := range plan.Regions {
		fmt.Printf("  region %d: requests [%6d m, %6d m) weight %.0f\n",
			i, reg.RowLo, reg.RowHi, reg.Weight)
	}
}

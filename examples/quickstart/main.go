// Quickstart: plan and execute a skew-resilient parallel band-join with the
// EWH (equi-weight histogram) scheme, and compare it against the 1-Bucket
// and M-Bucket baselines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ewh"
	"ewh/internal/stats"
)

func main() {
	// Two relations of 200k tuples. R2 is Zipf-skewed, so hash-style or
	// input-only partitioning misbalances the output work (join product
	// skew).
	const n = 200000
	rng := stats.NewRNG(7)
	zipf := stats.NewZipf(n, 0.8)
	r1 := make([]ewh.Key, n)
	r2 := make([]ewh.Key, n)
	for i := 0; i < n; i++ {
		r1[i] = rng.Int64n(n)
		r2[i] = zipf.Draw(rng)
	}

	cond := ewh.Band(5) // |R1.A - R2.A| <= 5
	opts := ewh.Options{J: 8, Model: ewh.DefaultBandModel, Seed: 42}

	// The paper's scheme: samples the output distribution, builds the
	// equi-weight histogram, and routes tuples to 8 workers.
	plan, err := ewh.Plan(r1, r2, cond, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EWH plan: %d regions, exact output size m=%d, stats took %v\n",
		len(plan.Regions), plan.M, plan.StatsDuration.Round(1e6))
	for i, reg := range plan.Regions {
		fmt.Printf("  region %d: R1 keys [%d,%d) x R2 keys [%d,%d), weight %.0f\n",
			i, reg.RowLo, reg.RowHi, reg.ColLo, reg.ColHi, reg.Weight)
	}

	// Execute and compare the three schemes' load balance.
	baselines := map[string]*ewh.PlanResult{"CSIO(EWH)": plan}
	if mb, err := ewh.PlanMBucket(r1, r2, cond, 1000, opts); err == nil {
		baselines["CSI(M-Bucket)"] = mb
	}
	if ob, err := ewh.PlanOneBucket(opts); err == nil {
		baselines["CI(1-Bucket)"] = ob
	}
	fmt.Println("\nscheme          output      network     max-input   max-output  max-work")
	for _, name := range []string{"CI(1-Bucket)", "CSI(M-Bucket)", "CSIO(EWH)"} {
		p := baselines[name]
		res := ewh.Execute(r1, r2, cond, p, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 1})
		fmt.Printf("%-15s %-11d %-11d %-13d %-12d %.0f\n",
			name, res.Output, res.NetworkTuples, res.MaxInput(), res.MaxOutput(), res.MaxWork)
	}
}

// Continuous call-log correlation: the streaming variant of the calllog
// example. Call-drop events arrive in minute-batches (windows) and each
// batch is correlated against the day's call setups (the static base) with
// a ±30-second band join — on ONE long-lived stream job, not a join per
// batch.
//
// Mid-stream, the feed's character flips: the overnight trickle (drops
// spread across the whole day's timestamp range) gives way to the morning
// rush, where every batch concentrates around 9h. The plan built for the
// trickle routes the rush-hour timestamp range to a single worker, so the
// rush would pile onto it — but the engine's drift detector sees the
// per-window statistics summaries depart the planned distribution, replans
// from them, and live-repartitions the base mid-stream. The run is repeated
// with replanning frozen to show what the flip costs a static plan.
//
//	go run ./examples/calllogstream
package main

import (
	"fmt"
	"log"
	"math"

	"ewh"
	"ewh/internal/stats"
)

// daySetups simulates the day's call setups with two rush-hour peaks — the
// base relation every arriving batch joins against.
func daySetups(n int, rng *stats.RNG) []ewh.Key {
	out := make([]ewh.Key, 0, n)
	for len(out) < n {
		u := rng.Float64()
		var t float64
		switch {
		case u < 0.4:
			t = 9*3600 + gauss(rng)*1800
		case u < 0.8:
			t = 18*3600 + gauss(rng)*1800
		default:
			t = rng.Float64() * 86400
		}
		if t >= 0 && t < 86400 {
			out = append(out, ewh.Key(t))
		}
	}
	return out
}

// trickleBatch draws an overnight batch: drops spread over the whole day.
func trickleBatch(n int, rng *stats.RNG) []ewh.Key {
	out := make([]ewh.Key, n)
	for i := range out {
		out[i] = ewh.Key(rng.Float64() * 86400)
	}
	return out
}

// rushBatch draws a morning-rush batch: drops concentrated around 9h.
func rushBatch(n int, rng *stats.RNG) []ewh.Key {
	out := make([]ewh.Key, 0, n)
	for len(out) < n {
		t := 9*3600 + gauss(rng)*900
		if t >= 0 && t < 86400 {
			out = append(out, ewh.Key(t))
		}
	}
	return out
}

// gauss draws a standard normal via Box-Muller.
func gauss(rng *stats.RNG) float64 {
	return math.Sqrt(-2*math.Log(rng.Float64Open())) * math.Cos(2*math.Pi*rng.Float64())
}

func run(setups []ewh.Key, windows [][]ewh.Key, freeze bool) *ewh.StreamResult {
	res, err := ewh.ExecuteStream(ewh.NewLocalStreamRuntime(8), setups, windows, ewh.Band(30),
		ewh.StreamConfig{
			Opts:       ewh.Options{J: 8, Seed: 5},
			Exec:       ewh.ExecConfig{Seed: 6},
			FreezePlan: freeze,
		})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	rng := stats.NewRNG(2024)
	setups := daySetups(120000, rng.Split())

	// Six overnight batches, then the morning rush begins.
	var windows [][]ewh.Key
	for i := 0; i < 6; i++ {
		windows = append(windows, trickleBatch(4000, rng.Split()))
	}
	for i := 0; i < 10; i++ {
		windows = append(windows, rushBatch(4000, rng.Split()))
	}

	live := run(setups, windows, false)
	frozen := run(setups, windows, true)

	fmt.Printf("correlated %d drop batches against %d setups: %d setup-drop pairs\n",
		len(windows), len(setups), live.Total)
	for _, w := range live.Windows {
		marker := ""
		if w.Replanned {
			marker = "  << rush detected: replanned"
		}
		fmt.Printf("  batch %2d: epoch %d pairs=%-7d drift=%.3f work=%.0f%s\n",
			w.Window, w.Epoch, w.Count, w.Drift, w.Makespan, marker)
	}
	fmt.Printf("\ndrift replanning: %d replan(s), modeled makespan %.0f\n", live.Replans, live.Makespan)
	fmt.Printf("frozen plan:      %d replan(s), modeled makespan %.0f\n", frozen.Replans, frozen.Makespan)
	if frozen.Total != live.Total {
		log.Fatalf("totals diverged: %d vs %d", frozen.Total, live.Total)
	}
	fmt.Printf("identical totals either way (%d); replanning cut the modeled makespan by %.0f%%\n",
		live.Total, 100*(1-live.Makespan/frozen.Makespan))
}

// TPC-H-like analytics: the paper's evaluation joins at laptop scale — the
// input-cost-dominated BICD band-join and the output-cost-dominated BEOCD
// equi+band join over a skewed ORDERS table (§VI-A, Appendix B).
//
// The run shows the spectrum argument of the paper's summary: 1-Bucket
// suffers on BICD (input replication), M-Bucket suffers on BEOCD (join
// product skew), and the EWH scheme tracks the better of the two at each
// end.
//
//	go run ./examples/tpch
package main

import (
	"fmt"
	"log"

	"ewh"
	"ewh/internal/workload"
)

func main() {
	const j = 16

	fmt.Println("== BICD: ABS(O1.orderkey - 10*O2.custkey) <= 2, z=0.25, input-cost dominated ==")
	r1, r2, cond := workload.BICD(80000, 0.25, 11)
	runAll(r1, r2, cond, ewh.DefaultBandModel, j)

	fmt.Println("\n== BEOCD: O1.custkey = O2.custkey AND |prio diff| <= 2, output-cost dominated ==")
	b1, b2, bcond, err := workload.BEOCD(workload.BEOCDConfig{N: 20000}, 12)
	if err != nil {
		log.Fatal(err)
	}
	runAll(b1, b2, bcond, ewh.DefaultEquiBandModel, j)
}

func runAll(r1, r2 []ewh.Key, cond ewh.Condition, model ewh.CostModel, j int) {
	opts := ewh.Options{J: j, Model: model, Seed: 13}
	plans := make([]*ewh.PlanResult, 0, 3)
	if p, err := ewh.PlanOneBucket(opts); err == nil {
		plans = append(plans, p)
	}
	if p, err := ewh.PlanMBucket(r1, r2, cond, 1000, opts); err == nil {
		plans = append(plans, p)
	}
	p, err := ewh.Plan(r1, r2, cond, opts)
	if err != nil {
		log.Fatal(err)
	}
	plans = append(plans, p)

	fmt.Printf("%-6s %12s %12s %12s %14s\n", "scheme", "output", "shipped", "max-work", "work-imbalance")
	for _, plan := range plans {
		res := ewh.Execute(r1, r2, cond, plan, model, ewh.ExecConfig{Seed: 14})
		var total float64
		for _, w := range res.Workers {
			total += w.Work
		}
		mean := total / float64(len(res.Workers))
		fmt.Printf("%-6s %12d %12d %12.0f %13.2fx\n",
			plan.Scheme.Name(), res.Output, res.NetworkTuples, res.MaxWork, res.MaxWork/mean)
	}
}

// Package ewh is a Go implementation of "Load Balancing and Skew Resilience
// for Parallel Joins" (Vitorovic, Elseidy, Koch — ICDE 2016): equi-weight
// histogram (EWH) partitioning for parallel monotonic joins (equality, band
// and inequality conditions), together with the 1-Bucket and M-Bucket
// baselines and an in-memory shared-nothing execution engine.
//
// The EWH scheme balances *both* the input tuples a machine receives and the
// output tuples it produces, eliminating redistribution skew and join
// product skew at once. It samples the join's output distribution without
// executing the join (a parallel Stream-Sample), builds a sample matrix over
// equi-depth histogram grids, coarsens it, and tiles it into at most J
// rectangular regions of near-equal weight with the MonotonicBSP algorithm.
//
// Quickstart:
//
//	r1 := workloadKeys1 // []ewh.Key
//	r2 := workloadKeys2
//	plan, err := ewh.Plan(r1, r2, ewh.Band(10), ewh.Options{J: 16})
//	if err != nil { ... }
//	res := ewh.Execute(r1, r2, ewh.Band(10), plan, ewh.ExecConfig{})
//	fmt.Println(res.Output, res.MaxWork)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package ewh

import (
	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/tiling"
)

// Key is a join key; relations are []Key. Composite predicates (equality on
// one attribute plus a band on another) are encoded onto a single Key with
// Composite.
type Key = join.Key

// Condition is a monotonic join predicate. Construct one with Band, Equi,
// Less/LessEq/Greater/GreaterEq or Composite.
type Condition = join.Condition

// Band returns the band-join condition |R1.A - R2.A| <= beta.
func Band(beta int64) Condition { return join.NewBand(beta) }

// Equi returns the equality condition R1.A = R2.A.
func Equi() Condition { return join.Equi{} }

// Less returns R1.A < R2.A.
func Less() Condition { return join.Inequality{Op: join.Less} }

// LessEq returns R1.A <= R2.A.
func LessEq() Condition { return join.Inequality{Op: join.LessEq} }

// Greater returns R1.A > R2.A.
func Greater() Condition { return join.Inequality{Op: join.Greater} }

// GreaterEq returns R1.A >= R2.A.
func GreaterEq() Condition { return join.Inequality{Op: join.GreaterEq} }

// Composite describes an equality+band predicate over two attributes,
// encoded onto one key. See join.CompositeSpec for the exactness argument.
type Composite = join.CompositeSpec

// CostModel is the linear per-tuple cost model w = Wi·input + Wo·output.
type CostModel = cost.Model

// CalibrationRun is one observation for CalibrateCost.
type CalibrationRun = cost.Run

// CalibrateCost fits a CostModel from benchmark observations by least
// squares, as §VI-A of the paper prescribes.
func CalibrateCost(runs []CalibrationRun) (CostModel, error) { return cost.Calibrate(runs) }

// DefaultBandModel is the paper's fitted model for band joins (wo = 0.2).
var DefaultBandModel = cost.DefaultBand

// DefaultEquiBandModel is the paper's model for equi+band joins (wo = 0.3).
var DefaultEquiBandModel = cost.DefaultEquiBand

// Options configure planning; J (the number of joiner machines) is required.
type Options = core.Options

// Region is one equi-weight histogram bucket: a rectangle of the join matrix
// assigned to one machine.
type Region = tiling.Region

// PlanResult is a ready-to-execute partitioning plan with diagnostics.
type PlanResult = core.Plan

// Scheme routes tuples to workers (implemented by all three partitioners).
type Scheme = partition.Scheme

// Plan builds the paper's equi-weight histogram (CSIO/EWH) plan: it collects
// input and output statistics and runs the 3-stage histogram algorithm. For
// high-selectivity joins it falls back to the content-insensitive scheme
// (PlanResult.Fallback reports this).
func Plan(r1, r2 []Key, cond Condition, opts Options) (*PlanResult, error) {
	return core.PlanCSIO(r1, r2, cond, opts)
}

// PlanMBucket builds the input-statistics-only M-Bucket (CSI) baseline with
// p histogram buckets per relation.
func PlanMBucket(r1, r2 []Key, cond Condition, p int, opts Options) (*PlanResult, error) {
	return core.PlanCSI(r1, r2, cond, p, opts)
}

// PlanOneBucket builds the statistics-free 1-Bucket (CI) baseline.
func PlanOneBucket(opts Options) (*PlanResult, error) {
	return core.PlanCI(opts)
}

// ExecConfig tunes the execution engine.
type ExecConfig = exec.Config

// JoinEngine selects the local-join engine workers run over their shuffled
// blocks (ExecConfig.Engine): the partitioned radix-hash engine or the
// sort + merge-sweep engine. The engines produce identical counts and
// identical pair streams; the selection is purely a performance knob.
type JoinEngine = exec.JoinEngine

const (
	// EngineAuto picks per condition: hash for pure equality, merge for
	// band/inequality windows.
	EngineAuto = exec.EngineAuto
	// EngineMerge forces the sort + merge-sweep engine everywhere.
	EngineMerge = exec.EngineMerge
	// EngineHash requests the hash engine; conditions it cannot serve fall
	// back to merge.
	EngineHash = exec.EngineHash
)

// ParseJoinEngine parses the -join-engine flag vocabulary (auto|merge|hash).
func ParseJoinEngine(s string) (JoinEngine, error) { return exec.ParseJoinEngine(s) }

// Result reports a join execution: exact output count, per-worker metrics,
// network and memory consumption, modeled makespan and wall time.
type Result = exec.Result

// Execute shuffles the relations to the plan's workers and runs the join.
// The model defaults to the plan's options' model via opts at plan time; the
// same model should be passed here for consistent Work metrics.
func Execute(r1, r2 []Key, cond Condition, plan *PlanResult, model CostModel, cfg ExecConfig) *Result {
	if !model.Valid() {
		model = cost.DefaultBand
	}
	return exec.Run(r1, r2, cond, plan.Scheme, model, cfg)
}

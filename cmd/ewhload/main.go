// Command ewhload is the multi-tenant load-test harness CI gates on: many
// concurrent tenant coordinators drive thousands of small joins over ONE
// shared worker fleet with admission control and per-tenant budgets, and the
// run fails on any policy violation — an output mismatch against the
// in-process engine, an untyped job failure, a tenant starved below half its
// fair share while a hog saturates the pool, a quota breach that did not
// surface as a typed rejection, or a goroutine leak after teardown.
//
// With no -workers flag it spawns its own fleet on loopback (real sockets,
// in-process workers) configured with the admission/budget flags; -workers
// drives an externally-launched ewhworker fleet instead, whose policy is
// whatever those processes were started with.
//
//	ewhload -fleet 4 -tenants 8 -jobs 500 -fairness 2s -quota -out report.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ewh/internal/loadtest"
	"ewh/internal/netexec"
)

// quotaTenant is the tenant the spawned fleet budgets tightly so the quota
// probe's over-sized join must bounce off a typed ErrQuota.
const quotaTenant = "quota-probe"

func main() {
	var (
		workers   = flag.String("workers", "", "comma-separated external worker addresses (empty: spawn -fleet workers in-process)")
		fleetN    = flag.Int("fleet", 4, "workers to spawn when -workers is empty")
		tenants   = flag.Int("tenants", 8, "concurrent tenant coordinators")
		jobs      = flag.Int("jobs", 500, "jobs per tenant in the throughput phase")
		conc      = flag.Int("concurrency", 2, "concurrent in-flight jobs per tenant")
		rows      = flag.Int("rows", 2000, "rows per relation per join")
		distinct  = flag.Int("distinct", 8, "distinct workloads jobs cycle through")
		spotEvery = flag.Int("spot-every", 50, "deep-compare per-worker metrics every Nth job (0: outputs only)")
		seed      = flag.Uint64("seed", 42, "workload seed")
		fairness  = flag.Duration("fairness", 0, "fairness phase wall window: a hog saturates the pool while regular tenants assert >=50% of fair share; run with -max-inflight 1 so the execution slot is contended (0: skip)")
		hogSess   = flag.Int("hog-sessions", 0, "hog tenant's session count in the fairness phase (0: 2x tenants)")
		fairRows  = flag.Int("fairness-rows", 0, "rows per relation in the fairness phase (0: -rows)")
		quota     = flag.Bool("quota", false, "run the quota probe (spawned fleets budget tenant "+quotaTenant+" tightly; external fleets must do the same)")
		timeout   = flag.Duration("timeout", 30*time.Second, "session dial and IO deadline")

		inflight  = flag.Int("max-inflight", 8, "spawned fleet: concurrent join executions per worker (0: unlimited)")
		maxQueue  = flag.Int("max-queue", 256, "spawned fleet: per-tenant queued jobs before typed rejection (0: unbounded)")
		queueWait = flag.Duration("queue-deadline", 20*time.Second, "spawned fleet: max queue wait before typed rejection (0: forever)")

		out = flag.String("out", "", "write the JSON report here (CI uploads it as an artifact)")
	)
	flag.Parse()

	baseline := runtime.NumGoroutine()

	cfg := loadtest.Config{
		Tenants:           *tenants,
		JobsPerTenant:     *jobs,
		Concurrency:       *conc,
		Rows:              *rows,
		DistinctWorkloads: *distinct,
		SpotCheckEvery:    *spotEvery,
		Seed:              *seed,
		Timeouts:          netexec.Timeouts{Dial: *timeout, IO: *timeout},
		FairnessWindow:    *fairness,
		HogSessions:       *hogSess,
		FairnessRows:      *fairRows,
	}
	if *quota {
		cfg.QuotaTenant = quotaTenant
	}

	var fleet *loadtest.Fleet
	if *workers == "" {
		var err error
		fleet, err = loadtest.SpawnFleet(loadtest.FleetConfig{
			Workers: *fleetN,
			Admission: netexec.AdmissionConfig{
				MaxInFlight: *inflight, MaxQueue: *maxQueue, QueueDeadline: *queueWait},
			PerTenant: map[string]netexec.TenantPolicy{
				quotaTenant: {MaxBytes: 1024},
			},
			Timeouts: netexec.Timeouts{Dial: *timeout, IO: *timeout},
		})
		if err != nil {
			fatal(err)
		}
		cfg.Addrs = fleet.Addrs
		fmt.Printf("spawned fleet: %d workers, max-inflight %d, max-queue %d, queue-deadline %v\n",
			*fleetN, *inflight, *maxQueue, *queueWait)
	} else {
		cfg.Addrs = strings.Split(*workers, ",")
	}

	rep, err := loadtest.Run(cfg)
	if err != nil {
		if fleet != nil {
			fleet.Close()
		}
		fatal(err)
	}

	if fleet != nil {
		for i, w := range fleet.Workers {
			s := w.AdmissionStats()
			fmt.Printf("worker %d admission: fastpath %d dispatched %d rejected %d granted %v\n",
				i, s.FastPath, s.Dispatched, s.Rejected, s.Granted)
		}
	}

	if fleet != nil {
		if err := fleet.Shutdown(30 * time.Second); err != nil {
			fatal(fmt.Errorf("fleet shutdown: %w", err))
		}
	}

	// After every session closed and the fleet drained, the process must be
	// back to its baseline goroutine count (readLoops, admitters, peer
	// servers all gone) — a leak here wedges a long-lived shared service.
	leak := checkGoroutines(baseline, 10*time.Second)

	printSummary(rep, leak)

	if *out != "" {
		wrapped := struct {
			*loadtest.Report
			GoroutineLeak string `json:"goroutine_leak,omitempty"`
		}{rep, leak}
		data, err := json.MarshalIndent(wrapped, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	viol := rep.Violations()
	if leak != "" {
		if viol != "" {
			viol += "; "
		}
		viol += leak
	}
	if viol != "" {
		fmt.Fprintln(os.Stderr, "ewhload: POLICY VIOLATION:", viol)
		os.Exit(1)
	}
	fmt.Println("ewhload: PASS")
}

// checkGoroutines polls until the goroutine count settles back to the
// pre-spawn baseline (plus a little runtime slack) or the deadline passes.
func checkGoroutines(baseline int, wait time.Duration) string {
	const slack = 4
	deadline := time.Now().Add(wait)
	n := runtime.NumGoroutine()
	for n > baseline+slack && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	if n > baseline+slack {
		return fmt.Sprintf("goroutine leak: %d alive after teardown (baseline %d)", n, baseline)
	}
	return ""
}

func printSummary(rep *loadtest.Report, leak string) {
	fmt.Printf("throughput: %d tenants x %d jobs over %d workers: %d completed, %d rejected (typed), %d mismatches, %d failures in %.0fms (%.0f jobs/s)\n",
		rep.Tenants, rep.JobsPerTenant, rep.Workers,
		rep.Completed, rep.Rejected, rep.Mismatches, rep.Failures, rep.WallMs, rep.JobsPerSec)
	fmt.Printf("latency: p50 %.1fms p99 %.1fms\n", rep.P50Ms, rep.P99Ms)
	for _, t := range rep.PerTenant {
		fmt.Printf("  %s: %4d completed %3d rejected  p50 %6.1fms  p99 %6.1fms\n",
			t.Tenant, t.Completed, t.Rejected, t.P50Ms, t.P99Ms)
	}
	if f := rep.Fairness; f != nil {
		fmt.Printf("fairness: hog (%d sessions) %d vs normals %v over %.0fms; fair share %.0f, slowest tenant at %.0f%% of it\n",
			f.HogSessions, f.HogCompleted, f.Normal, f.WindowMs, f.FairShare, 100*f.MinShareRatio)
	}
	if q := rep.Quota; q != nil {
		if q.TypedRejection {
			fmt.Println("quota probe: over-budget join rejected with typed ErrQuota")
		} else {
			fmt.Printf("quota probe: FAILED: %s\n", q.Err)
		}
	}
	for _, e := range rep.Errors {
		fmt.Println("  error:", e)
	}
	if leak != "" {
		fmt.Println("  " + leak)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ewhload:", err)
	os.Exit(1)
}

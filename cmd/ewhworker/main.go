// Command ewhworker runs a join worker server for the networked execution
// mode: it accepts jobs from an ewhcoord coordinator — one-shot v1/v2
// connections or persistent v3 sessions — joins the tuples it receives and
// reports its metrics.
//
// On SIGINT/SIGTERM the worker shuts down gracefully: it stops accepting,
// drains every in-flight job (bounded by -drain), then exits 0. -fail-after
// N crashes the worker abruptly after N completed jobs — the deterministic
// fault-injection hook recovery demos and load tests kill workers with.
//
//	ewhworker -addr 127.0.0.1:7071
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ewh/internal/exec"
	"ewh/internal/netexec"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "address to listen on")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout for in-flight jobs")
	timeout := flag.Duration("timeout", 0, "dial and per-operation IO deadline on session and peer connections (0: none)")
	failAfter := flag.Int("fail-after", 0, "crash abruptly after completing N jobs (fault-injection hook for recovery testing; 0: never)")
	maxInFlight := flag.Int("max-inflight", 0, "admission control: concurrent join executions (0: unlimited)")
	maxQueue := flag.Int("max-queue", 0, "admission control: per-tenant queued jobs before typed rejection (0: unbounded)")
	queueDeadline := flag.Duration("queue-deadline", 0, "admission control: max queue wait before typed rejection (0: wait forever)")
	tenantBytes := flag.Int64("tenant-max-bytes", 0, "default per-tenant buffered relation byte budget (0: unlimited)")
	tenantInter := flag.Int64("tenant-max-intermediate", 0, "default per-tenant stage-1 intermediate tuple budget per plan job (0: unlimited)")
	engineStr := flag.String("join-engine", "auto", "default local-join engine for jobs opened with auto (auto, merge, hash)")
	cacheBytes := flag.Int64("build-cache-bytes", netexec.DefaultBuildCacheBytes, "build-side hash-join cache budget in bytes (<= 0: disable sharing)")
	weights := netexec.TenantWeights{}
	flag.Var(weights, "tenant-weight", "tenant scheduling weight as name=w (repeatable); weighted tenants keep the default tenant budgets")
	flag.Parse()

	w, err := netexec.ListenWorker(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewhworker:", err)
		os.Exit(1)
	}
	engine, err := exec.ParseJoinEngine(*engineStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewhworker:", err)
		os.Exit(1)
	}
	w.SetJoinEngine(engine)
	if *cacheBytes != netexec.DefaultBuildCacheBytes {
		w.SetBuildCacheBytes(*cacheBytes)
	}
	w.SetTimeouts(netexec.Timeouts{Dial: *timeout, IO: *timeout})
	if *maxInFlight > 0 {
		w.SetAdmission(netexec.AdmissionConfig{
			MaxInFlight: *maxInFlight, MaxQueue: *maxQueue, QueueDeadline: *queueDeadline})
	}
	base := netexec.TenantPolicy{MaxBytes: *tenantBytes, MaxIntermediate: *tenantInter}
	if *tenantBytes > 0 || *tenantInter > 0 {
		w.SetDefaultTenantPolicy(base)
	}
	weights.Apply(w, base)
	if *failAfter > 0 {
		w.FailAfterJobs(*failAfter)
		fmt.Fprintf(os.Stderr, "ewhworker: will crash after %d jobs\n", *failAfter)
	}
	fmt.Println("ewhworker listening on", w.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	signaled := make(chan struct{})
	shutdownErr := make(chan error, 1)
	go func() {
		sig := <-sigc
		close(signaled)
		fmt.Fprintf(os.Stderr, "ewhworker: %v: draining in-flight jobs (up to %v)\n", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		shutdownErr <- w.Shutdown(ctx)
	}()

	if err := w.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "ewhworker:", err)
		os.Exit(1)
	}
	// Serve returns the moment the listener closes; when a signal caused
	// that, wait out the drain before exiting.
	select {
	case <-signaled:
		if err := <-shutdownErr; err != nil {
			fmt.Fprintf(os.Stderr, "ewhworker: drain timed out: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ewhworker: drained, exiting")
	default:
	}
}

// Command ewhworker runs a join worker server for the networked execution
// mode: it accepts jobs from an ewhcoord coordinator, joins the tuple
// batches it receives and reports its metrics.
//
//	ewhworker -addr 127.0.0.1:7071
package main

import (
	"flag"
	"fmt"
	"os"

	"ewh/internal/netexec"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "address to listen on")
	flag.Parse()

	w, err := netexec.ListenWorker(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ewhworker:", err)
		os.Exit(1)
	}
	fmt.Println("ewhworker listening on", w.Addr())
	if err := w.Serve(); err != nil {
		fmt.Fprintln(os.Stderr, "ewhworker:", err)
		os.Exit(1)
	}
}

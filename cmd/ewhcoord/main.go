// Command ewhcoord coordinates a distributed join over ewhworker servers: it
// generates (or could load) a workload, builds the EWH plan, dials a
// persistent session to the workers, shuffles the tuples to them over TCP
// and prints the aggregated metrics.
//
//	ewhworker -addr 127.0.0.1:7071 &
//	ewhworker -addr 127.0.0.1:7072 &
//	ewhcoord -workers 127.0.0.1:7071,127.0.0.1:7072 -n 100000 -beta 3
//
// With no -workers flag it spawns in-process workers, which makes a
// single-binary demo of the full network path. -jobs N runs the join N
// times over the one dialed session (the dial-amortization the session
// protocol exists for); -dial-per-job falls back to the one-shot v2
// transport for comparison, and -multiway runs the 3-way chain join
// pipeline distributed end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/multiway"
	"ewh/internal/netexec"
	"ewh/internal/workload"
)

func main() {
	var (
		workers    = flag.String("workers", "", "comma-separated worker addresses (empty: spawn in-process)")
		n          = flag.Int("n", 100000, "rows per relation")
		beta       = flag.Int64("beta", 3, "band half-width")
		z          = flag.Float64("z", 0.5, "zipf skew")
		j          = flag.Int("j", 4, "number of regions J")
		seed       = flag.Uint64("seed", 42, "random seed")
		jobs       = flag.Int("jobs", 1, "jobs to run over the one dialed session")
		dialPerJob = flag.Bool("dial-per-job", false, "use the one-shot v2 transport (dials every worker per job)")
		mway       = flag.Bool("multiway", false, "run the 3-way chain join pipeline instead of a 2-way join")
	)
	flag.Parse()

	r1 := workload.Zipfian(*n, int64(*n), *z, *seed)
	r2 := workload.Zipfian(*n, int64(*n), *z, *seed+1)
	cond := join.NewBand(*beta)
	model := cost.DefaultBand

	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: *j, Model: model, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: %s with %d regions, m=%d, stats %v\n",
		plan.Scheme.Name(), plan.Scheme.Workers(), plan.M, plan.StatsDuration.Round(1e6))

	// The 2-way plan may regionalize to fewer than J workers, but the
	// multiway pipeline re-plans each stage internally with J — size the
	// spawned pool for the largest scheme any mode can produce (stage
	// schemes never exceed their Options' J).
	spawn := plan.Scheme.Workers()
	if *mway && *j > spawn {
		spawn = *j
	}
	var addrs []string
	if *workers == "" {
		for i := 0; i < spawn; i++ {
			w, err := netexec.ListenWorker("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			go func() { _ = w.Serve() }()
			defer w.Close()
			addrs = append(addrs, w.Addr())
		}
		fmt.Printf("spawned %d in-process workers\n", len(addrs))
	} else {
		addrs = strings.Split(*workers, ",")
	}

	if *mway {
		runMultiway(addrs, r1, r2, *n, *j, *seed, model)
		return
	}

	if *dialPerJob {
		start := time.Now()
		var res *exec.Result
		for i := 0; i < *jobs; i++ {
			res, err = netexec.Run(addrs, r1, r2, cond, plan.Scheme, model,
				exec.Config{Seed: *seed + 2})
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%d job(s), dial-per-job, total %v\n", *jobs, time.Since(start).Round(time.Millisecond))
		printResult(res, addrs)
		return
	}

	sess, err := netexec.Dial(addrs)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	start := time.Now()
	var res *exec.Result
	for i := 0; i < *jobs; i++ {
		res, err = exec.RunOver(sess, r1, r2, cond, plan.Scheme, model,
			exec.Config{Seed: *seed + 2})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%d job(s) over one session (1 dial per worker), total %v\n",
		*jobs, time.Since(start).Round(time.Millisecond))
	printResult(res, addrs)
}

// runMultiway executes the 3-way chain join R1 ⋈ Mid ⋈ R3 distributed over
// the session: the Mid relation's B keys ship as a payload segment and both
// EWH-planned stages run on the remote workers.
func runMultiway(addrs []string, r1, r2 []join.Key, n, j int, seed uint64, model cost.Model) {
	mid := multiway.MidRelation{
		A: r2,
		B: workload.Zipfian(n, int64(n), 0.3, seed+7),
	}
	r3 := workload.Zipfian(n, int64(n), 0.3, seed+8)
	q := multiway.Query{R1: r1, Mid: mid, R3: r3,
		CondA: join.NewBand(1), CondB: join.Equi{}}

	sess, err := netexec.Dial(addrs)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	res, err := multiway.ExecuteOver(sess, q, core.Options{J: j, Model: model, Seed: seed},
		exec.Config{Seed: seed + 2})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("multiway: |R1 ⋈ Mid ⋈ R3| = %d (intermediate %d)\n", res.Output, res.Intermediate)
	for i, st := range res.Stages {
		if st.Exec == nil {
			fmt.Printf("  stage %d: %s\n", i+1, st.Scheme)
			continue
		}
		fmt.Printf("  stage %d: %s plan=%v %v\n", i+1, st.Scheme,
			st.PlanDuration.Round(time.Millisecond), st.Exec)
	}
}

func printResult(res *exec.Result, addrs []string) {
	fmt.Println(res)
	for i, w := range res.Workers {
		fmt.Printf("  worker %2d @ %s: in=%d out=%d work=%.0f\n",
			i, addrs[i], w.Input(), w.Output, w.Work)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ewhcoord:", err)
	os.Exit(1)
}

// Command ewhcoord coordinates a distributed join over ewhworker servers: it
// generates (or could load) a workload, builds the EWH plan, shuffles the
// tuples to the workers over TCP and prints the aggregated metrics.
//
//	ewhworker -addr 127.0.0.1:7071 &
//	ewhworker -addr 127.0.0.1:7072 &
//	ewhcoord -workers 127.0.0.1:7071,127.0.0.1:7072 -n 100000 -beta 3
//
// With no -workers flag it spawns in-process workers, which makes a
// single-binary demo of the full network path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/netexec"
	"ewh/internal/workload"
)

func main() {
	var (
		workers = flag.String("workers", "", "comma-separated worker addresses (empty: spawn in-process)")
		n       = flag.Int("n", 100000, "rows per relation")
		beta    = flag.Int64("beta", 3, "band half-width")
		z       = flag.Float64("z", 0.5, "zipf skew")
		j       = flag.Int("j", 4, "number of regions J")
		seed    = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	r1 := workload.Zipfian(*n, int64(*n), *z, *seed)
	r2 := workload.Zipfian(*n, int64(*n), *z, *seed+1)
	cond := join.NewBand(*beta)
	model := cost.DefaultBand

	plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: *j, Model: model, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("plan: %s with %d regions, m=%d, stats %v\n",
		plan.Scheme.Name(), plan.Scheme.Workers(), plan.M, plan.StatsDuration.Round(1e6))

	var addrs []string
	if *workers == "" {
		for i := 0; i < plan.Scheme.Workers(); i++ {
			w, err := netexec.ListenWorker("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			go func() { _ = w.Serve() }()
			defer w.Close()
			addrs = append(addrs, w.Addr())
		}
		fmt.Printf("spawned %d in-process workers\n", len(addrs))
	} else {
		addrs = strings.Split(*workers, ",")
	}

	res, err := netexec.Run(addrs, r1, r2, cond, plan.Scheme, model, exec.Config{Seed: *seed + 2})
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)
	for i, w := range res.Workers {
		fmt.Printf("  worker %2d @ %s: in=%d out=%d work=%.0f\n",
			i, addrs[i], w.Input(), w.Output, w.Work)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ewhcoord:", err)
	os.Exit(1)
}

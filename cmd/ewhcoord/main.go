// Command ewhcoord coordinates a distributed join over ewhworker servers: it
// generates (or could load) a workload, builds the EWH plan, dials a
// persistent session to the workers, shuffles the tuples to them over TCP
// and prints the aggregated metrics.
//
//	ewhworker -addr 127.0.0.1:7071 &
//	ewhworker -addr 127.0.0.1:7072 &
//	ewhcoord -workers 127.0.0.1:7071,127.0.0.1:7072 -n 100000 -beta 3
//
// With no -workers flag it spawns in-process workers, which makes a
// single-binary demo of the full network path. -jobs N runs the join N
// times over the one dialed session (the dial-amortization the session
// protocol exists for); -dial-per-job falls back to the one-shot v2
// transport for comparison, and -multiway runs the 3-way chain join
// pipeline distributed end to end — by default with the direct
// worker→worker re-shuffle of the stage-1 intermediate (-relay forces the
// coordinator-relay baseline). -planin executes a plan artifact written by
// ewhplan -planout, skipping the planning phase entirely (plan once,
// execute many); -timeout arms dial and per-operation IO deadlines and
// -job-timeout a per-job liveness deadline, so a hung worker fails a job
// instead of wedging the run. -retries N turns a failed job into a bounded
// recovery loop: the coordinator excludes the failed workers, re-plans over
// the survivors (re-profiling the relations, or shrinking/CI-falling-back a
// -planin artifact) and re-runs, backing off -retry-backoff doubling per
// attempt. -stream N switches to the continuous-join mode: N tuple windows
// arrive against a static base relation on one long-lived stream job, the
// window distribution flips mid-stream, and drift-triggered replanning
// live-repartitions the base without restarting the stream (-freeze-plan
// runs the same workload under the frozen first plan for comparison).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/exec"
	"ewh/internal/join"
	"ewh/internal/multiway"
	"ewh/internal/netexec"
	"ewh/internal/partition"
	"ewh/internal/planio"
	"ewh/internal/streamjoin"
	"ewh/internal/workload"
)

func main() {
	var (
		workers    = flag.String("workers", "", "comma-separated worker addresses (empty: spawn in-process)")
		n          = flag.Int("n", 100000, "rows per relation")
		beta       = flag.Int64("beta", 3, "band half-width")
		z          = flag.Float64("z", 0.5, "zipf skew")
		j          = flag.Int("j", 4, "number of regions J")
		seed       = flag.Uint64("seed", 42, "random seed")
		jobs       = flag.Int("jobs", 1, "jobs to run over the one dialed session")
		dialPerJob = flag.Bool("dial-per-job", false, "use the one-shot v2 transport (dials every worker per job)")
		mway       = flag.Bool("multiway", false, "run the 3-way chain join pipeline instead of a 2-way join")
		relay      = flag.Bool("relay", false, "with -multiway: force the coordinator-relay baseline instead of the peer shuffle")
		stage2     = flag.String("stage2-scheme", "auto", "with -multiway: peer-path stage-2 scheme (auto, hash, ci, csio; auto = CSIO via distributed statistics)")
		planin     = flag.String("planin", "", "execute a plan artifact (ewhplan -planout) instead of planning: plan once, execute many")
		timeout    = flag.Duration("timeout", 0, "dial and per-operation IO deadline on worker connections (0: none)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job liveness deadline: a worker silent this long fails the job instead of wedging it (0: none)")
		retries    = flag.Int("retries", 0, "retry a job this many times on worker failure, replanning over the survivors (0: fail fast)")
		backoff    = flag.Duration("retry-backoff", 50*time.Millisecond, "base delay before the first retry (doubles per attempt)")
		tenant     = flag.String("tenant", "", "tenant id declared in the session handshake: workers key admission control and resource budgets by it (empty: anonymous)")
		engineStr  = flag.String("join-engine", "auto", "local-join engine on the workers (auto, merge, hash); auto picks hash for pure-equality conditions, merge otherwise")
		stream     = flag.Int("stream", 0, "run a continuous join: this many tuple windows arrive against the static base relation, with drift-triggered mid-stream replanning; the window distribution flips to a narrow range at the midpoint (0: off)")
		windowRows = flag.Int("window-rows", 0, "with -stream: rows per window (default n/10)")
		driftThr   = flag.Float64("drift", 0, "with -stream: replanning drift threshold in (0,1] (0: the streamjoin default)")
		freeze     = flag.Bool("freeze-plan", false, "with -stream: disable drift replanning; every window runs under the first window's plan (the control arm)")
	)
	flag.Parse()

	engine, err := exec.ParseJoinEngine(*engineStr)
	if err != nil {
		fatal(err)
	}

	if *stream > 0 {
		if *mway {
			fatal(fmt.Errorf("-stream and -multiway are separate modes"))
		}
		runStream(streamArgs{workers: *workers, tenant: *tenant, n: *n, windows: *stream,
			windowRows: *windowRows, beta: *beta, z: *z, j: *j, seed: *seed,
			timeouts: netexec.Timeouts{Dial: *timeout, IO: *timeout, Job: *jobTimeout},
			driftThr: *driftThr, freeze: *freeze, engine: engine})
		return
	}

	r1 := workload.Zipfian(*n, int64(*n), *z, *seed)
	r2 := workload.Zipfian(*n, int64(*n), *z, *seed+1)
	cond := join.NewBand(*beta)
	model := cost.DefaultBand
	timeouts := netexec.Timeouts{Dial: *timeout, IO: *timeout, Job: *jobTimeout}
	retry := exec.RetryPolicy{MaxAttempts: *retries + 1, BaseDelay: *backoff}

	var scheme partition.Scheme
	// planFor rebuilds the plan when recovery shrinks the fleet below the
	// original worker count; at full strength it returns the original scheme.
	var planFor func(jw int) (partition.Scheme, error)
	execSeed := *seed + 2
	if *planin != "" && *mway {
		fatal(fmt.Errorf("-planin applies to the 2-way join only: the multiway pipeline plans each stage internally"))
	}
	if *planin != "" {
		data, err := os.ReadFile(*planin)
		if err != nil {
			fatal(err)
		}
		artifact, err := planio.Decode(data)
		if err != nil {
			fatal(err)
		}
		scheme = artifact.Scheme
		execSeed = artifact.Seed + 2
		// No relations were ever profiled here, so a shrink that needs
		// fresh statistics (region plans with more regions than survivors)
		// falls back to the content-insensitive CI plan (§VI-E).
		planFor = func(jw int) (partition.Scheme, error) {
			shrunk, err := planio.ShrinkToFleet(artifact, jw)
			if errors.Is(err, planio.ErrNeedsReplan) {
				fmt.Fprintf(os.Stderr, "ewhcoord: %v; falling back to the CI plan\n", err)
				return partition.NewCI(jw), nil
			}
			if err != nil {
				return nil, err
			}
			return shrunk.Scheme, nil
		}
		fmt.Printf("plan artifact %s: %s with %d workers, seed %d (no planning phase)\n",
			*planin, scheme.Name(), scheme.Workers(), artifact.Seed)
	} else {
		plan, err := core.PlanCSIO(r1, r2, cond, core.Options{J: *j, Model: model, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		scheme = plan.Scheme
		// The relations are in hand: a shrunken fleet gets a fresh
		// content-sensitive plan sized to the survivors.
		planFor = func(jw int) (partition.Scheme, error) {
			if jw >= scheme.Workers() {
				return scheme, nil
			}
			p, err := core.PlanCSIO(r1, r2, cond, core.Options{J: jw, Model: model, Seed: *seed})
			if err != nil {
				return nil, err
			}
			return p.Scheme, nil
		}
		fmt.Printf("plan: %s with %d regions, m=%d, stats %v\n",
			plan.Scheme.Name(), plan.Scheme.Workers(), plan.M, plan.StatsDuration.Round(1e6))
	}

	// The 2-way plan may regionalize to fewer than J workers, but the
	// multiway pipeline re-plans each stage internally with J — size the
	// spawned pool for the largest scheme any mode can produce (stage
	// schemes never exceed their Options' J).
	spawn := scheme.Workers()
	if *mway && *j > spawn {
		spawn = *j
	}
	var addrs []string
	if *workers == "" {
		for i := 0; i < spawn; i++ {
			w, err := netexec.ListenWorker("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			go func() { _ = w.Serve() }()
			defer w.Close()
			addrs = append(addrs, w.Addr())
		}
		fmt.Printf("spawned %d in-process workers\n", len(addrs))
	} else {
		addrs = strings.Split(*workers, ",")
	}

	if *mway {
		mode, err := multiway.ParseStage2Mode(*stage2)
		if err != nil {
			fatal(err)
		}
		if *relay && mode != multiway.Stage2Auto {
			fatal(fmt.Errorf("-relay re-plans stage 2 on the coordinator; -stage2-scheme %v applies to the peer path only", mode))
		}
		runMultiway(addrs, *tenant, r1, r2, *n, *j, *seed, model, timeouts, retry, *relay, mode, engine)
		return
	}

	if *dialPerJob {
		if *timeout > 0 {
			fmt.Fprintln(os.Stderr, "ewhcoord: -timeout applies to session connections only; the one-shot v2 transport ignores it")
		}
		if *retries > 0 {
			fmt.Fprintln(os.Stderr, "ewhcoord: -retries applies to session connections only; the one-shot v2 transport fails fast")
		}
		start := time.Now()
		var res *exec.Result
		var err error
		for i := 0; i < *jobs; i++ {
			res, err = netexec.Run(addrs, r1, r2, cond, scheme, model,
				exec.Config{Seed: execSeed, Engine: engine})
			if err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%d job(s), dial-per-job, total %v\n", *jobs, time.Since(start).Round(time.Millisecond))
		printResult(res, addrs)
		return
	}

	sess, err := netexec.DialTenant(context.Background(), *tenant, addrs, timeouts)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	start := time.Now()
	var res *exec.Result
	for i := 0; i < *jobs; i++ {
		res, err = exec.RunOverReplan(sess, r1, r2, cond, scheme.Workers(), planFor,
			model, exec.Config{Seed: execSeed, Retry: retry, Engine: engine})
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%d job(s) over one session (1 dial per worker), total %v\n",
		*jobs, time.Since(start).Round(time.Millisecond))
	printResult(res, addrs)
}

// runMultiway executes the 3-way chain join R1 ⋈ Mid ⋈ R3 distributed over
// the session: the Mid relation's B keys ship as a payload segment and both
// stages run on the remote workers. By default the stage-1 intermediate
// re-shuffles directly worker→worker under a broadcast plan artifact, with
// the stage-2 scheme selected by -stage2-scheme (auto = a genuine CSIO plan
// built from distributed statistics); -relay forces the coordinator-relay
// baseline.
func runMultiway(addrs []string, tenant string, r1, r2 []join.Key, n, j int, seed uint64, model cost.Model,
	timeouts netexec.Timeouts, retry exec.RetryPolicy, relay bool, stage2 multiway.Stage2Mode,
	engine exec.JoinEngine) {

	mid := multiway.MidRelation{
		A: r2,
		B: workload.Zipfian(n, int64(n), 0.3, seed+7),
	}
	r3 := workload.Zipfian(n, int64(n), 0.3, seed+8)
	q := multiway.Query{R1: r1, Mid: mid, R3: r3,
		CondA: join.NewBand(1), CondB: join.Equi{}}

	sess, err := netexec.DialTenant(context.Background(), tenant, addrs, timeouts)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	run := func(rt exec.Runtime, q multiway.Query, opts core.Options, cfg exec.Config) (*multiway.Result, error) {
		return multiway.ExecuteOverStage2(rt, q, opts, cfg, stage2)
	}
	mode := fmt.Sprintf("peer shuffle, stage-2 %v", stage2)
	if relay {
		run = multiway.ExecuteOverRelay
		mode = "coordinator relay"
	}
	res, err := run(sess, q, core.Options{J: j, Model: model, Seed: seed},
		exec.Config{Seed: seed + 2, Retry: retry, Engine: engine})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("multiway (%s): |R1 ⋈ Mid ⋈ R3| = %d (intermediate %d, %d pairs relayed through coordinator)\n",
		mode, res.Output, res.Intermediate, sess.RelayedPairs())
	for i, st := range res.Stages {
		if st.Exec == nil {
			fmt.Printf("  stage %d: %s\n", i+1, st.Scheme)
			continue
		}
		fmt.Printf("  stage %d: %s plan=%v %v\n", i+1, st.Scheme,
			st.PlanDuration.Round(time.Millisecond), st.Exec)
	}
}

// streamArgs bundles the continuous-join mode's knobs.
type streamArgs struct {
	workers    string
	tenant     string
	n          int
	windows    int
	windowRows int
	beta       int64
	z          float64
	j          int
	seed       uint64
	timeouts   netexec.Timeouts
	driftThr   float64
	freeze     bool
	engine     exec.JoinEngine
}

// runStream executes the continuous-join demo: a stream of tuple windows
// joining against a static base relation on a long-lived stream job, with
// the window distribution flipping into a narrow range at the midpoint. With
// replanning on, the drift metric catches the flip and the base is live-
// repartitioned under a fresh plan mid-stream; -freeze-plan shows what the
// frozen plan costs on the same workload.
func runStream(a streamArgs) {
	rows := a.windowRows
	if rows <= 0 {
		rows = a.n / 10
		if rows < 1 {
			rows = 1
		}
	}
	base := workload.Zipfian(a.n, int64(a.n), a.z, a.seed)
	narrow := int64(a.n)/50 + 1
	flip := a.windows / 2
	windows := make([][]join.Key, a.windows)
	for i := range windows {
		span := int64(a.n)
		if i >= flip && flip > 0 {
			span = narrow
		}
		windows[i] = workload.Uniform(rows, span, a.seed+10+uint64(i))
	}

	var addrs []string
	if a.workers == "" {
		for i := 0; i < a.j; i++ {
			w, err := netexec.ListenWorker("127.0.0.1:0")
			if err != nil {
				fatal(err)
			}
			go func() { _ = w.Serve() }()
			defer w.Close()
			addrs = append(addrs, w.Addr())
		}
		fmt.Printf("spawned %d in-process workers\n", len(addrs))
	} else {
		addrs = strings.Split(a.workers, ",")
	}

	sess, err := netexec.DialTenant(context.Background(), a.tenant, addrs, a.timeouts)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()

	cfg := streamjoin.Config{
		Opts:           core.Options{J: a.j, Model: cost.DefaultBand, Seed: a.seed},
		Exec:           exec.Config{Seed: a.seed + 2, Engine: a.engine},
		Stats:          exec.StatsSpec{Seed: a.seed + 3},
		DriftThreshold: a.driftThr,
		FreezePlan:     a.freeze,
	}
	start := time.Now()
	res, err := streamjoin.Run(sess, base, windows, join.NewBand(a.beta), cfg)
	if err != nil {
		fatal(err)
	}
	mode := "drift replanning"
	if a.freeze {
		mode = "frozen plan"
	}
	fmt.Printf("continuous join (%s): %d windows x %d rows vs %d-row base, total %d matches in %v\n",
		mode, len(res.Windows), rows, a.n, res.Total, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  %d replan(s), %d fault(s), modeled makespan %.0f, %d pairs relayed through coordinator\n",
		res.Replans, res.Faults, res.Makespan, sess.RelayedPairs())
	for _, w := range res.Windows {
		marker := ""
		if w.Replanned {
			marker = "  << drift replan"
		}
		fmt.Printf("  window %2d: epoch %d in=%d matches=%d drift=%.3f work=%.0f%s\n",
			w.Window, w.Epoch, w.Input, w.Count, w.Drift, w.Makespan, marker)
	}
}

func printResult(res *exec.Result, addrs []string) {
	fmt.Println(res)
	for i, w := range res.Workers {
		fmt.Printf("  worker %2d @ %s: in=%d out=%d work=%.0f\n",
			i, addrs[i], w.Input(), w.Output, w.Work)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ewhcoord:", err)
	os.Exit(1)
}

// Command ewhbench regenerates the paper's evaluation tables and figures at
// a configurable scale. Run with -exp all (default) or a comma-separated
// subset of: fig1, tab3, tab4, tab5, fig4a, fig4b, fig4c, fig4d, fig4e,
// fig4f, fig4g, fig4h, worst.
//
//	ewhbench -exp fig4a,fig4h -j 16 -scale 2 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ewh/internal/bench"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "experiments to run (comma-separated ids or 'all')")
		scale = flag.Int("scale", 1, "dataset scale multiplier (1 ≈ paper ÷ 1000)")
		j     = flag.Int("j", 8, "number of joiner machines J")
		seed  = flag.Uint64("seed", 42, "random seed")
		bout  = flag.String("benchout", "", "write the engine hot-path benchmark to this JSON file (e.g. BENCH_exec.json) and exit")
		base  = flag.String("baseline", "", "with -benchout: compare against these committed baseline JSONs (comma-separated) and exit nonzero on regression")
		maxRg = flag.Float64("maxregress", 0.25, "with -baseline: tolerated fractional cost-metric growth before failing")
	)
	flag.Parse()

	cfg := bench.Config{Scale: *scale, J: *j, Seed: *seed}
	if *bout != "" {
		rep, err := bench.WriteExecBenchJSON(os.Stdout, cfg, *bout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ewhbench: benchout: %v\n", err)
			os.Exit(1)
		}
		if *base != "" {
			failed := false
			for _, path := range strings.Split(*base, ",") {
				if err := bench.CheckExecBenchAgainst(os.Stdout, rep, strings.TrimSpace(path), *maxRg); err != nil {
					fmt.Fprintf(os.Stderr, "ewhbench: %v\n", err)
					failed = true
				}
			}
			if failed {
				os.Exit(1)
			}
		}
		return
	}
	drivers := map[string]func(io.Writer, bench.Config) error{
		"tab3":   bench.TableIII,
		"tab4":   bench.TableIV,
		"tab5":   bench.TableV,
		"fig4a":  bench.Fig4a,
		"fig4b":  bench.Fig4b,
		"fig4c":  bench.Fig4c,
		"fig4d":  bench.Fig4d,
		"fig4e":  bench.Fig4e,
		"fig4f":  bench.Fig4f,
		"fig4g":  bench.Fig4g,
		"fig3":   bench.Fig3,
		"fig4h":  bench.Fig4h,
		"worst":  bench.Worst,
		"ablate": bench.Ablations,
		"equi":   bench.EquiComparison,
		"steal":  bench.WorkStealing,
	}
	order := []string{"fig1", "fig3", "tab4", "tab3", "fig4a", "fig4b", "fig4c",
		"fig4d", "fig4e", "fig4f", "fig4g", "fig4h", "tab5", "worst", "ablate",
		"equi", "steal"}

	want := map[string]bool{}
	if *exps == "all" {
		for _, id := range order {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*exps, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	for _, id := range order {
		if !want[id] {
			continue
		}
		delete(want, id)
		var err error
		if id == "fig1" {
			err = bench.Fig1(os.Stdout, *seed)
		} else {
			err = drivers[id](os.Stdout, cfg)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ewhbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	for id := range want {
		fmt.Fprintf(os.Stderr, "ewhbench: unknown experiment %q\n", id)
		os.Exit(2)
	}
}

// Command ewhplan builds a partitioning plan for a generated workload and
// prints the resulting equi-weight histogram regions — a quick way to see
// what the planner does without running the join. With -planout the plan is
// persisted as a binary artifact (scheme, regions, routing seed) that any
// executor — ewhcoord -planin, or a coordinator process on another machine —
// loads and executes identically: plan once, execute many.
//
//	ewhplan -workload bcb -x 19200 -beta 3 -j 8
//	ewhplan -workload bicd -n 60000 -j 16 -scheme csi -p 500
//	ewhplan -workload zipf -j 8 -planout band.ewhp
//	ewhplan -planin band.ewhp
package main

import (
	"flag"
	"fmt"
	"os"

	"ewh/internal/core"
	"ewh/internal/cost"
	"ewh/internal/join"
	"ewh/internal/partition"
	"ewh/internal/planio"
	"ewh/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "bcb", "workload: bcb | bicd | beocd | uniform | zipf")
		scheme  = flag.String("scheme", "csio", "scheme: csio | csi | ci")
		n       = flag.Int("n", 60000, "rows per relation (bicd/beocd/uniform/zipf)")
		x       = flag.Int("x", 19200, "dense-segment size (bcb); relations hold 5x rows")
		beta    = flag.Int64("beta", 3, "band half-width (bcb/uniform/zipf)")
		z       = flag.Float64("z", 0.25, "zipf skew (bicd/zipf)")
		j       = flag.Int("j", 8, "number of machines J")
		p       = flag.Int("p", 1000, "CSI bucket count")
		seed    = flag.Uint64("seed", 42, "random seed")
		planout = flag.String("planout", "", "write the built plan as a binary artifact to this file")
		planin  = flag.String("planin", "", "load and describe a plan artifact instead of planning")
	)
	flag.Parse()

	if *planin != "" {
		describeArtifact(*planin)
		return
	}

	var (
		r1, r2 []join.Key
		cond   join.Condition
		model  = cost.DefaultBand
	)
	switch *wl {
	case "bcb":
		r1, r2, cond = workload.BCB(*x, *beta, *seed)
	case "bicd":
		r1, r2, cond = workload.BICD(*n, *z, *seed)
	case "beocd":
		var err error
		r1, r2, cond, err = workload.BEOCD(workload.BEOCDConfig{N: *n}, *seed)
		if err != nil {
			fatal(err)
		}
		model = cost.DefaultEquiBand
	case "uniform":
		r1 = workload.Uniform(*n, int64(*n), *seed)
		r2 = workload.Uniform(*n, int64(*n), *seed+1)
		cond = join.NewBand(*beta)
	case "zipf":
		r1 = workload.Zipfian(*n, int64(*n), *z, *seed)
		r2 = workload.Zipfian(*n, int64(*n), *z, *seed+1)
		cond = join.NewBand(*beta)
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}

	opts := core.Options{J: *j, Model: model, Seed: *seed}
	var (
		plan *core.Plan
		err  error
	)
	switch *scheme {
	case "csio":
		plan, err = core.PlanCSIO(r1, r2, cond, opts)
	case "csi":
		plan, err = core.PlanCSI(r1, r2, cond, *p, opts)
	case "ci":
		plan, err = core.PlanCI(opts)
	default:
		err = fmt.Errorf("unknown scheme %q", *scheme)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload=%s condition=%v n1=%d n2=%d J=%d\n", *wl, cond, len(r1), len(r2), *j)
	fmt.Printf("scheme=%s workers=%d stats=%v fallback=%v\n",
		plan.Scheme.Name(), plan.Scheme.Workers(), plan.StatsDuration.Round(1e6), plan.Fallback)
	if plan.M > 0 {
		fmt.Printf("exact output size m=%d (rho_oi=%.2f)\n",
			plan.M, float64(plan.M)/float64(len(r1)+len(r2)))
	}
	if len(plan.Regions) > 0 {
		fmt.Printf("ns=%d nc=%d estimated max region weight=%.0f\n",
			plan.NS, plan.NC, plan.EstimatedMaxWeight)
		fmt.Println("regions:")
		for i, r := range plan.Regions {
			fmt.Printf("  %2d: %v (input=%.0f output=%.0f)\n", i, r, r.Input, r.Output)
		}
	}

	if *planout != "" {
		data, err := planio.Encode(&planio.Artifact{Scheme: plan.Scheme, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*planout, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("plan artifact written to %s (%d bytes)\n", *planout, len(data))
	}
}

// describeArtifact loads a plan artifact and prints what it would execute.
func describeArtifact(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	a, err := planio.Decode(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("artifact %s: scheme=%s workers=%d seed=%d (%d bytes)\n",
		path, a.Scheme.Name(), a.Scheme.Workers(), a.Seed, len(data))
	if rs, ok := a.Scheme.(*partition.RegionScheme); ok {
		fmt.Println("regions:")
		for i, r := range rs.Regions() {
			fmt.Printf("  %2d: %v (input=%.0f output=%.0f)\n", i, r, r.Input, r.Output)
		}
	}
	if a.Assignment != nil {
		fmt.Printf("assignment over %d machines, makespan=%.2f\n",
			len(a.Assignment.Capacity), a.Assignment.Makespan())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ewhplan:", err)
	os.Exit(1)
}

package ewh

import (
	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/multiway"
	"ewh/internal/partition"
)

// This file exposes the paper's extension features (§IV-B, §A5): multi-way
// chain joins executed as a sequence of EWH-planned 2-way joins,
// heterogeneous-cluster region assignment, and the payload-carrying tuple
// engine that materializes join results for downstream operators.

// MidRelation is the middle relation of a 3-way chain join: column A joins
// left, column B joins right.
type MidRelation = multiway.MidRelation

// MultiwayQuery is a 3-way chain join R1 ⋈ Mid ⋈ R3 (§IV-B).
type MultiwayQuery = multiway.Query

// MultiwayResult reports a multi-way execution: per-stage schemes and
// metrics, the intermediate size, and the final cardinality.
type MultiwayResult = multiway.Result

// ExecuteMultiway runs the chain join as a sequence of EWH-planned 2-way
// joins, re-partitioning the materialized intermediate result with a fresh
// equi-weight histogram so each stage is balanced on its own input and
// output distribution.
func ExecuteMultiway(q MultiwayQuery, opts Options, cfg ExecConfig) (*MultiwayResult, error) {
	return multiway.Execute(q, opts, cfg)
}

// Assignment maps histogram regions onto machines of heterogeneous capacity
// (§A5). Plan with J = a few × machine count, then assign.
type Assignment = partition.Assignment

// AssignRegions distributes regions over machines with the given relative
// capacities, minimizing the capacity-normalized makespan (LPT for uniform
// machines with speeds).
func AssignRegions(regions []Region, capacities []float64) (*Assignment, error) {
	return partition.AssignRegions(regions, capacities)
}

// Tuple carries a routing key plus an opaque payload through the engine.
type Tuple[P any] = exec.Tuple[P]

// WrapKeys lifts bare keys into payload-less tuples.
func WrapKeys(keys []Key) []Tuple[struct{}] { return exec.WrapKeys(keys) }

// ExecuteTuples runs a join over payload-carrying tuples, invoking emit for
// every matching pair (never concurrently for the same workerID). Use it
// when the join result feeds another operator rather than being counted.
func ExecuteTuples[P1, P2 any](r1 []Tuple[P1], r2 []Tuple[P2], cond Condition,
	plan *PlanResult, model CostModel, cfg ExecConfig,
	emit func(workerID int, a Tuple[P1], b Tuple[P2])) *Result {
	if !model.Valid() {
		model = DefaultBandModel
	}
	return exec.RunTuples(r1, r2, cond, plan.Scheme, model, cfg, emit)
}

// Refine re-plans with runtime feedback: measuredOutput holds the output
// tuples each region actually produced (Result.Workers[i].Output, indexed
// like plan.Regions). Region estimates are corrected by measured/estimated
// before the regionalization reruns — the paper's suggested combination of
// EWH planning with adaptive estimators (§V).
func Refine(plan *PlanResult, measuredOutput []int64, opts Options) (*PlanResult, error) {
	return core.Refine(plan, measuredOutput, opts)
}

// EncodePlan serializes a plan to JSON so a coordinator can persist it or
// ship it to another process. Decoded plans route and execute identically;
// only Refine needs the original in-memory plan.
func EncodePlan(plan *PlanResult) ([]byte, error) { return core.EncodePlan(plan) }

// DecodePlan reconstructs a plan serialized by EncodePlan.
func DecodePlan(data []byte) (*PlanResult, error) { return core.DecodePlan(data) }

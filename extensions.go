package ewh

import (
	"ewh/internal/core"
	"ewh/internal/exec"
	"ewh/internal/multiway"
	"ewh/internal/netexec"
	"ewh/internal/partition"
	"ewh/internal/planio"
	"ewh/internal/streamjoin"
)

// This file exposes the paper's extension features (§IV-B, §A5): multi-way
// chain joins executed as a sequence of EWH-planned 2-way joins,
// heterogeneous-cluster region assignment, and the payload-carrying tuple
// engine that materializes join results for downstream operators.

// MidRelation is the middle relation of a 3-way chain join: column A joins
// left, column B joins right.
type MidRelation = multiway.MidRelation

// MultiwayQuery is a 3-way chain join R1 ⋈ Mid ⋈ R3 (§IV-B).
type MultiwayQuery = multiway.Query

// MultiwayResult reports a multi-way execution: per-stage schemes and
// metrics, the intermediate size, and the final cardinality.
type MultiwayResult = multiway.Result

// ExecuteMultiway runs the chain join as a sequence of EWH-planned 2-way
// joins, re-partitioning the materialized intermediate result with a fresh
// equi-weight histogram so each stage is balanced on its own input and
// output distribution.
func ExecuteMultiway(q MultiwayQuery, opts Options, cfg ExecConfig) (*MultiwayResult, error) {
	return multiway.Execute(q, opts, cfg)
}

// Runtime abstracts WHERE a planned join executes: the in-process engine
// (LocalRuntime) and a dialed worker cluster (Dial) are two transports
// behind the same execution API, producing bit-identical results for the
// same ExecConfig.
type Runtime = exec.Runtime

// LocalRuntime returns the in-process runtime: workers are goroutines.
func LocalRuntime() Runtime { return exec.Local{} }

// Cluster is a persistent session to remote join workers (ewhworker
// processes): one connection per worker, dialed and handshaken once, with
// numbered jobs multiplexed over it. It implements Runtime; Close hangs up.
type Cluster = netexec.Session

// Dial connects to remote workers and opens a session on each. Schemes
// executed over the returned Cluster may use up to len(addrs) workers.
func Dial(addrs []string) (*Cluster, error) { return netexec.Dial(addrs) }

// Timeouts bounds a cluster's connection establishment and per-operation IO
// so one hung worker or peer fails a job instead of wedging the session.
type Timeouts = netexec.Timeouts

// DialWith is Dial with explicit dial/IO deadlines.
func DialWith(addrs []string, t Timeouts) (*Cluster, error) { return netexec.DialWith(addrs, t) }

// WorkerPool is the coordinator-side handle on a SHARED worker fleet: any
// number of concurrent coordinators draw tenant sessions from one fixed set
// of worker addresses, and the workers enforce per-tenant admission control,
// weighted fair scheduling and resource budgets. See netexec.Pool.
type WorkerPool = netexec.Pool

// NewWorkerPool wraps a worker fleet's addresses as a shared pool; sessions
// dialed through it carry a tenant identity in the v3 handshake.
func NewWorkerPool(addrs []string, t Timeouts) (*WorkerPool, error) {
	return netexec.NewPool(addrs, t)
}

// ErrAdmission marks a job a worker refused under admission control (queue
// full or queue deadline exceeded): errors.Is(err, ErrAdmission). The worker
// is healthy — shed load or back off rather than retry hot.
var ErrAdmission = netexec.ErrAdmission

// ErrQuota marks a job that exceeded its tenant's worker-side resource
// budget: errors.Is(err, ErrQuota). Deterministic, never retried.
var ErrQuota = netexec.ErrQuota

// PlanArtifact is a serializable partitioning plan: the scheme, its routing
// seed, and an optional heterogeneous-cluster assignment. Artifacts
// round-trip byte-exactly through EncodePlanArtifact/DecodePlanArtifact, so
// a plan built once executes identically anywhere — in files (ewhplan
// -planout, ewhcoord -planin) and on the wire (the cluster broadcasts one
// to its workers for the multiway peer re-shuffle).
type PlanArtifact = planio.Artifact

// EncodePlanArtifact serializes a plan artifact with the binary plan codec.
func EncodePlanArtifact(a *PlanArtifact) ([]byte, error) { return planio.Encode(a) }

// DecodePlanArtifact reconstructs a plan artifact; the decoded scheme routes
// identically to the encoded one.
func DecodePlanArtifact(data []byte) (*PlanArtifact, error) { return planio.Decode(data) }

// ExecuteOver runs a planned join through rt — Execute generalized over the
// transport. With a Cluster runtime the relations are shuffled once on the
// coordinator and streamed to the remote workers as they scatter.
func ExecuteOver(rt Runtime, r1, r2 []Key, cond Condition, plan *PlanResult,
	model CostModel, cfg ExecConfig) (*Result, error) {
	if !model.Valid() {
		model = DefaultBandModel
	}
	return exec.RunOver(rt, r1, r2, cond, plan.Scheme, model, cfg)
}

// ExecuteTuplesOver runs a payload-carrying join through rt. enc1/enc2
// encode each relation's payloads for the wire (nil ships that relation as
// bare keys); in-process runtimes never invoke them. Matched pairs are
// emitted on the coordinator in a deterministic per-worker order, identical
// across transports.
func ExecuteTuplesOver[P1, P2 any](rt Runtime, r1 []Tuple[P1], r2 []Tuple[P2],
	cond Condition, plan *PlanResult, model CostModel, cfg ExecConfig,
	enc1 func(dst []byte, p P1) []byte, enc2 func(dst []byte, p P2) []byte,
	emit func(workerID int, a Tuple[P1], b Tuple[P2])) (*Result, error) {
	if !model.Valid() {
		model = DefaultBandModel
	}
	return exec.RunTuplesOver(rt, r1, r2, cond, plan.Scheme, model, cfg, enc1, enc2, emit)
}

// ExecuteMultiwayOver runs the 3-way chain join through rt: with a Cluster
// runtime both stages execute on the remote workers, the Mid relation
// shipping its B keys as a wire payload segment. Stage-aware runtimes (a
// Cluster) take the peer-shuffle path — the stage-1 intermediate re-shuffles
// directly worker→worker and never transits the coordinator, under a genuine
// CSIO stage-2 plan built from distributed statistics (each worker ships a
// small summary of its local intermediate; the coordinator merges them and
// broadcasts the plan); others fall back to the coordinator-relay strategy.
func ExecuteMultiwayOver(rt Runtime, q MultiwayQuery, opts Options, cfg ExecConfig) (*MultiwayResult, error) {
	return multiway.ExecuteOver(rt, q, opts, cfg)
}

// Stage2Mode selects how the peer-shuffle path partitions a multiway
// pipeline's second stage: Stage2Auto (CSIO via distributed statistics —
// the default), Stage2Hash / Stage2CI (content-insensitive plans broadcast
// before stage 1 runs), or Stage2CSIO (force the distributed-statistics
// plan). ParseStage2Mode parses the CLI spelling (auto, hash, ci, csio).
type Stage2Mode = multiway.Stage2Mode

// Stage-2 partitioning modes for ExecuteMultiwayOverStage2.
const (
	Stage2Auto = multiway.Stage2Auto
	Stage2Hash = multiway.Stage2Hash
	Stage2CI   = multiway.Stage2CI
	Stage2CSIO = multiway.Stage2CSIO
)

// ParseStage2Mode parses a stage-2 mode name (auto, hash, ci, csio).
func ParseStage2Mode(s string) (Stage2Mode, error) { return multiway.ParseStage2Mode(s) }

// ExecuteMultiwayOverStage2 is ExecuteMultiwayOver with an explicit stage-2
// partitioning mode for the peer-shuffle path.
func ExecuteMultiwayOverStage2(rt Runtime, q MultiwayQuery, opts Options, cfg ExecConfig,
	mode Stage2Mode) (*MultiwayResult, error) {
	return multiway.ExecuteOverStage2(rt, q, opts, cfg, mode)
}

// ExecuteMultiwayOverRelay forces the coordinator-relay strategy on any
// runtime: stage-1 matches stream back as pairs, the coordinator
// materializes the intermediate, re-plans it with a fresh equi-weight
// histogram and re-shuffles it itself. It is the tracked baseline the peer
// path is measured against — and the path that keeps CSIO output balancing
// for stage 2.
func ExecuteMultiwayOverRelay(rt Runtime, q MultiwayQuery, opts Options, cfg ExecConfig) (*MultiwayResult, error) {
	return multiway.ExecuteOverRelay(rt, q, opts, cfg)
}

// Assignment maps histogram regions onto machines of heterogeneous capacity
// (§A5). Plan with J = a few × machine count, then assign.
type Assignment = partition.Assignment

// AssignRegions distributes regions over machines with the given relative
// capacities, minimizing the capacity-normalized makespan (LPT for uniform
// machines with speeds).
func AssignRegions(regions []Region, capacities []float64) (*Assignment, error) {
	return partition.AssignRegions(regions, capacities)
}

// Tuple carries a routing key plus an opaque payload through the engine.
type Tuple[P any] = exec.Tuple[P]

// WrapKeys lifts bare keys into payload-less tuples.
func WrapKeys(keys []Key) []Tuple[struct{}] { return exec.WrapKeys(keys) }

// ExecuteTuples runs a join over payload-carrying tuples, invoking emit for
// every matching pair (never concurrently for the same workerID). Use it
// when the join result feeds another operator rather than being counted.
func ExecuteTuples[P1, P2 any](r1 []Tuple[P1], r2 []Tuple[P2], cond Condition,
	plan *PlanResult, model CostModel, cfg ExecConfig,
	emit func(workerID int, a Tuple[P1], b Tuple[P2])) *Result {
	if !model.Valid() {
		model = DefaultBandModel
	}
	return exec.RunTuples(r1, r2, cond, plan.Scheme, model, cfg, emit)
}

// Refine re-plans with runtime feedback: measuredOutput holds the output
// tuples each region actually produced (Result.Workers[i].Output, indexed
// like plan.Regions). Region estimates are corrected by measured/estimated
// before the regionalization reruns — the paper's suggested combination of
// EWH planning with adaptive estimators (§V).
func Refine(plan *PlanResult, measuredOutput []int64, opts Options) (*PlanResult, error) {
	return core.Refine(plan, measuredOutput, opts)
}

// EncodePlan serializes a plan to JSON so a coordinator can persist it or
// ship it to another process. Decoded plans route and execute identically;
// only Refine needs the original in-memory plan.
func EncodePlan(plan *PlanResult) ([]byte, error) { return core.EncodePlan(plan) }

// DecodePlan reconstructs a plan serialized by EncodePlan.
func DecodePlan(data []byte) (*PlanResult, error) { return core.DecodePlan(data) }

// StreamConfig tunes a continuous windowed join (see ExecuteStream).
type StreamConfig = streamjoin.Config

// StreamResult is a finished continuous-join run: per-window accounting,
// the stream's match total, and the replan/fault/makespan bookkeeping.
type StreamResult = streamjoin.Result

// WindowStat is one window's accounting within a StreamResult.
type WindowStat = streamjoin.WindowStat

// ExecuteStream runs a continuous windowed join of windows (relation 1)
// against the static base relation (relation 2) with drift-triggered
// mid-stream replanning: each window's merged worker summaries are compared
// against the distribution the active plan was built for, and when they
// drift past cfg.DriftThreshold the base is live-repartitioned under a new
// plan without restarting the stream. The match total is bit-identical
// regardless of how often the run replans or recovers from worker faults.
// rt must host stream jobs: NewLocalStreamRuntime or a Cluster.
func ExecuteStream(rt Runtime, base []Key, windows [][]Key, cond Condition,
	cfg StreamConfig) (*StreamResult, error) {
	return streamjoin.Run(rt, base, windows, cond, cfg)
}

// NewLocalStreamRuntime returns an in-process runtime hosting continuous
// stream jobs over workers simulated worker slots — the reference
// implementation the wire transport is crosschecked against.
func NewLocalStreamRuntime(workers int) Runtime {
	return exec.LocalStreamRuntime{Workers: workers}
}

package ewh_test

import (
	"testing"

	"ewh"
	"ewh/internal/localjoin"
	"ewh/internal/workload"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	r1 := workload.Uniform(3000, 2000, 1)
	r2 := workload.Uniform(3000, 2000, 2)
	cond := ewh.Band(3)
	plan, err := ewh.Plan(r1, r2, cond, ewh.Options{J: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := ewh.Execute(r1, r2, cond, plan, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 4})
	want := localjoin.NestedLoopCount(r1, r2, cond)
	if res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
	if res.Scheme != "CSIO" {
		t.Fatalf("scheme %s", res.Scheme)
	}
}

func TestPublicBaselines(t *testing.T) {
	r1 := workload.Uniform(2000, 1500, 5)
	r2 := workload.Uniform(2000, 1500, 6)
	cond := ewh.Band(2)
	want := localjoin.NestedLoopCount(r1, r2, cond)

	mb, err := ewh.PlanMBucket(r1, r2, cond, 64, ewh.Options{J: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := ewh.PlanOneBucket(ewh.Options{J: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*ewh.PlanResult{mb, ob} {
		res := ewh.Execute(r1, r2, cond, plan, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 8})
		if res.Output != want {
			t.Fatalf("%s output %d, want %d", plan.Scheme.Name(), res.Output, want)
		}
	}
}

func TestPublicConditions(t *testing.T) {
	cases := []struct {
		c          ewh.Condition
		a, b       ewh.Key
		wantsMatch bool
	}{
		{ewh.Band(2), 5, 7, true},
		{ewh.Band(2), 5, 8, false},
		{ewh.Equi(), 3, 3, true},
		{ewh.Less(), 1, 2, true},
		{ewh.LessEq(), 2, 2, true},
		{ewh.Greater(), 3, 2, true},
		{ewh.GreaterEq(), 2, 3, false},
	}
	for _, c := range cases {
		if got := c.c.Matches(c.a, c.b); got != c.wantsMatch {
			t.Errorf("%v.Matches(%d,%d) = %v, want %v", c.c, c.a, c.b, got, c.wantsMatch)
		}
	}
}

func TestPublicCalibrate(t *testing.T) {
	runs := []ewh.CalibrationRun{
		{Input: 1000, Output: 0, Seconds: 1000},
		{Input: 0, Output: 1000, Seconds: 200},
		{Input: 1000, Output: 1000, Seconds: 1200},
	}
	m, err := ewh.CalibrateCost(runs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Wi != 1 || m.Wo < 0.15 || m.Wo > 0.25 {
		t.Fatalf("calibrated %+v, want wi=1 wo≈0.2", m)
	}
}

func TestPublicCompositeJoin(t *testing.T) {
	spec := ewh.Composite{SecondaryMax: 7, Beta: 2}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	r1, r2, cond, err := workload.BEOCD(workload.BEOCDConfig{N: 2000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ewh.Plan(r1, r2, cond, ewh.Options{J: 4, Model: ewh.DefaultEquiBandModel, Seed: 10, DisableFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	res := ewh.Execute(r1, r2, cond, plan, ewh.DefaultEquiBandModel, ewh.ExecConfig{Seed: 11})
	if want := localjoin.NestedLoopCount(r1, r2, cond); res.Output != want {
		t.Fatalf("output %d, want %d", res.Output, want)
	}
}

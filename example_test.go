package ewh_test

import (
	"fmt"

	"ewh"
	"ewh/internal/workload"
)

// ExamplePlan builds an equi-weight histogram plan for a band join and
// executes it, printing the exact output size and the worker count.
func ExamplePlan() {
	r1 := workload.Uniform(10000, 5000, 1)
	r2 := workload.Uniform(10000, 5000, 2)
	cond := ewh.Band(3)

	plan, err := ewh.Plan(r1, r2, cond, ewh.Options{J: 4, Seed: 3})
	if err != nil {
		panic(err)
	}
	res := ewh.Execute(r1, r2, cond, plan, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 4})
	fmt.Println("scheme:", res.Scheme)
	fmt.Println("workers:", len(res.Workers))
	fmt.Println("output == planned m:", res.Output == plan.M)
	// Output:
	// scheme: CSIO
	// workers: 4
	// output == planned m: true
}

// ExampleCalibrateCost fits the cost model from benchmark observations.
func ExampleCalibrateCost() {
	runs := []ewh.CalibrationRun{
		{Input: 1e6, Output: 0, Seconds: 10},
		{Input: 0, Output: 1e6, Seconds: 2},
		{Input: 1e6, Output: 1e6, Seconds: 12},
	}
	m, err := ewh.CalibrateCost(runs)
	if err != nil {
		panic(err)
	}
	fmt.Println(m)
	// Output:
	// w(r) = 1·input + 0.2·output
}

// ExampleComposite encodes an equality+band predicate over two attributes
// onto one monotonic key.
func ExampleComposite() {
	spec := ewh.Composite{SecondaryMax: 7, Beta: 2}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	cond := spec.Condition()
	a := spec.Encode(42, 3) // custkey 42, priority 3
	b := spec.Encode(42, 5) // same custkey, priority within the band
	c := spec.Encode(43, 3) // different custkey
	fmt.Println(cond.Matches(a, b), cond.Matches(a, c))
	// Output:
	// true false
}

package ewh_test

import (
	"sync/atomic"
	"testing"

	"ewh"
	"ewh/internal/localjoin"
	"ewh/internal/workload"
)

func TestFacadeMultiway(t *testing.T) {
	q := ewh.MultiwayQuery{
		R1:    workload.Uniform(500, 400, 1),
		Mid:   ewh.MidRelation{A: workload.Uniform(500, 400, 2), B: workload.Uniform(500, 400, 3)},
		R3:    workload.Uniform(500, 400, 4),
		CondA: ewh.Band(1),
		CondB: ewh.Band(2),
	}
	res, err := ewh.ExecuteMultiway(q, ewh.Options{J: 4, Seed: 5}, ewh.ExecConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth via two nested loops.
	var want int64
	for _, a := range q.R1 {
		for i := range q.Mid.A {
			if !q.CondA.Matches(a, q.Mid.A[i]) {
				continue
			}
			for _, c := range q.R3 {
				if q.CondB.Matches(q.Mid.B[i], c) {
					want++
				}
			}
		}
	}
	if res.Output != want {
		t.Fatalf("multiway output %d, want %d", res.Output, want)
	}
}

func TestFacadeAssignRegions(t *testing.T) {
	r1 := workload.Uniform(3000, 1500, 7)
	r2 := workload.Uniform(3000, 1500, 8)
	// Plan 12 regions for 3 machines with capacities 2:1:1.
	plan, err := ewh.Plan(r1, r2, ewh.Band(2), ewh.Options{J: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ewh.AssignRegions(plan.Regions, []float64{2, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Load) != 3 {
		t.Fatalf("%d machines", len(a.Load))
	}
	if a.Load[0] < a.Load[1] && a.Load[0] < a.Load[2] {
		t.Error("fastest machine received the least work")
	}
	if a.Makespan() <= 0 {
		t.Error("makespan not computed")
	}
}

func TestFacadeExecuteTuples(t *testing.T) {
	r1 := workload.Uniform(800, 500, 10)
	r2 := workload.Uniform(800, 500, 11)
	cond := ewh.Band(1)
	plan, err := ewh.Plan(r1, r2, cond, ewh.Options{J: 4, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var pairs int64
	res := ewh.ExecuteTuples(ewh.WrapKeys(r1), ewh.WrapKeys(r2), cond, plan,
		ewh.DefaultBandModel, ewh.ExecConfig{Seed: 13},
		func(w int, a, b ewh.Tuple[struct{}]) { atomic.AddInt64(&pairs, 1) })
	if want := localjoin.NestedLoopCount(r1, r2, cond); res.Output != want || pairs != want {
		t.Fatalf("output %d emitted %d, want %d", res.Output, pairs, want)
	}
}

func TestFacadeRefineAndSerialize(t *testing.T) {
	r1 := workload.Zipfian(3000, 1500, 0.6, 14)
	r2 := workload.Zipfian(3000, 1500, 0.6, 15)
	cond := ewh.Band(2)
	opts := ewh.Options{J: 6, Seed: 16}
	plan, err := ewh.Plan(r1, r2, cond, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := ewh.Execute(r1, r2, cond, plan, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 17})
	measured := make([]int64, len(plan.Regions))
	for i := range measured {
		measured[i] = res.Workers[i].Output
	}
	refined, err := ewh.Refine(plan, measured, opts)
	if err != nil {
		t.Fatal(err)
	}
	res2 := ewh.Execute(r1, r2, cond, refined, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 17})
	if res2.Output != res.Output {
		t.Fatalf("refined plan changed the join result: %d vs %d", res2.Output, res.Output)
	}

	data, err := ewh.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ewh.DecodePlan(data)
	if err != nil {
		t.Fatal(err)
	}
	res3 := ewh.Execute(r1, r2, cond, back, ewh.DefaultBandModel, ewh.ExecConfig{Seed: 17})
	if res3.Output != res.Output {
		t.Fatalf("decoded plan changed the join result: %d vs %d", res3.Output, res.Output)
	}
}

func TestFacadeExecuteStream(t *testing.T) {
	base := workload.Uniform(8000, 4000, 31)
	windows := [][]ewh.Key{
		workload.Uniform(1000, 4000, 32),
		workload.Uniform(1000, 4000, 33),
		workload.Uniform(1000, 4000, 34),
	}
	cond := ewh.Band(2)
	res, err := ewh.ExecuteStream(ewh.NewLocalStreamRuntime(3), base, windows, cond,
		ewh.StreamConfig{Opts: ewh.Options{J: 3, Seed: 35}})
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, w := range windows {
		for _, a := range w {
			for _, b := range base {
				if cond.Matches(a, b) {
					want++
				}
			}
		}
	}
	if res.Total != want || len(res.Windows) != len(windows) {
		t.Fatalf("stream total %d over %d windows, want %d over %d",
			res.Total, len(res.Windows), want, len(windows))
	}
}
